(* Scalability of the quotient approach (beyond the paper's figures, in
   support of its §5 claim of "efficiency and scalability").

   Sweeping the instance size l of a fixed synthetic configuration
   (arity, arity, l, v), we measure: the time to quotient the l² product,
   the number of signature classes it collapses to, and the interactions a
   local and a lookahead strategy then need.  The point the table makes:
   build time grows with the product, but the class count — and with it
   the number of questions — stays governed by the lattice, which is what
   lets the interactive protocol survive big instances. *)

module Prng = Jqi_util.Prng
module Timer = Jqi_util.Timer
module Table = Jqi_util.Ascii_table
module Universe = Jqi_core.Universe
module Strategy = Jqi_core.Strategy
module Oracle = Jqi_core.Oracle
module Inference = Jqi_core.Inference
module Synth = Jqi_synth.Synth

type point = {
  rows : int;
  product : int;
  build_seconds : float;
  classes : float;  (* mean over runs *)
  join_ratio : float;
  td_interactions : float;
  l2s_interactions : float;
  l2s_seconds : float;
}

let run ?(seed = 23) ?(runs = 3) ?(r_arity = 3) ?(p_arity = 3) ?(values = 100)
    row_counts =
  let prng = Prng.create seed in
  List.map
    (fun rows ->
      let config = Synth.config r_arity p_arity rows values in
      let acc_build = ref 0. and acc_classes = ref 0 in
      let acc_ratio = ref 0. in
      let acc_td = ref 0. and acc_l2s = ref 0. and acc_l2s_t = ref 0. in
      for _ = 1 to runs do
        let r, p = Synth.generate prng config in
        let universe, dt = Timer.time (fun () -> Universe.build r p) in
        acc_build := !acc_build +. dt;
        acc_classes := !acc_classes + Universe.n_classes universe;
        acc_ratio := !acc_ratio +. Universe.join_ratio universe;
        (* A fixed-size goal: the first size-1 predicate of the instance,
           or ∅ if the instance has no matches at all. *)
        let goal =
          match Synth.goals_of_size universe ~size:1 with
          | g :: _ -> g
          | [] -> Jqi_core.Omega.empty (Universe.omega universe)
        in
        let td = Inference.run universe Strategy.td (Oracle.honest ~goal) in
        let l2s = Inference.run universe Strategy.l2s (Oracle.honest ~goal) in
        acc_td := !acc_td +. float_of_int td.n_interactions;
        acc_l2s := !acc_l2s +. float_of_int l2s.n_interactions;
        acc_l2s_t := !acc_l2s_t +. l2s.elapsed
      done;
      let f = float_of_int runs in
      {
        rows;
        product = rows * rows;
        build_seconds = !acc_build /. f;
        classes = float_of_int !acc_classes /. f;
        join_ratio = !acc_ratio /. f;
        td_interactions = !acc_td /. f;
        l2s_interactions = !acc_l2s /. f;
        l2s_seconds = !acc_l2s_t /. f;
      })
    row_counts

let render points =
  Table.render
    ~headers:
      [
        "rows/relation"; "|D|"; "build (s)"; "classes"; "join ratio";
        "TD int."; "L2S int."; "L2S time (s)";
      ]
    (List.map
       (fun p ->
         [
           string_of_int p.rows;
           string_of_int p.product;
           Printf.sprintf "%.4f" p.build_seconds;
           Printf.sprintf "%.1f" p.classes;
           Printf.sprintf "%.3f" p.join_ratio;
           Printf.sprintf "%.1f" p.td_interactions;
           Printf.sprintf "%.1f" p.l2s_interactions;
           Printf.sprintf "%.4f" p.l2s_seconds;
         ])
       points)
