(* Extensions around §6: the interactive semijoin heuristic and
   positive-only minimality. *)

open Fixtures
module Bits = Jqi_util.Bits
module Prng = Jqi_util.Prng
module Relation = Jqi_relational.Relation
module Omega = Jqi_core.Omega
module Semijoin = Jqi_semijoin.Semijoin
module Heuristic = Jqi_semijoin.Heuristic
module Minimality = Jqi_semijoin.Minimality

module Int_set = Minimality.Int_set

let selected r p omega theta =
  Int_set.of_list
    (List.filter (Semijoin.selects r p omega theta)
       (List.init (Relation.cardinality r) Fun.id))

let test_heuristic_recovers_goal_semantics () =
  (* For several goals, the heuristic's inferred predicate selects exactly
     the same rows of R0 as the goal (instance equivalence for ⋉). *)
  List.iter
    (fun goal_pairs ->
      let goal = pred0 goal_pairs in
      let result =
        Heuristic.run r0 p0 omega0
          ~oracle:(Heuristic.honest_oracle r0 p0 omega0 ~goal)
      in
      Alcotest.(check bool)
        (Printf.sprintf "same selection for %s"
           (Omega.pred_to_string omega0 goal))
        true
        (Int_set.equal
           (selected r0 p0 omega0 goal)
           (selected r0 p0 omega0 result.predicate)))
    [ []; [ (0, 1) ]; [ (0, 0); (1, 2) ]; [ (1, 1) ]; [ (1, 0); (1, 1); (1, 2) ] ]

let test_heuristic_skips_certain () =
  (* All rows of R0 share the witness structure only partially, but at
     least the query count never exceeds |R|, and asked + implied covers
     all rows. *)
  let goal = pred0 [ (0, 1) ] in
  let result =
    Heuristic.run r0 p0 omega0
      ~oracle:(Heuristic.honest_oracle r0 p0 omega0 ~goal)
  in
  Alcotest.(check bool) "queries <= |R|" true
    (result.n_queries <= Relation.cardinality r0);
  Alcotest.(check int) "asked + implied = |R|" (Relation.cardinality r0)
    (List.length result.asked + List.length result.implied)

let test_heuristic_implied_rows_correct () =
  (* Every row the heuristic skipped as "implied" must get the same label
     from the goal oracle — skipping never loses information. *)
  List.iter
    (fun goal_pairs ->
      let goal = pred0 goal_pairs in
      let oracle = Heuristic.honest_oracle r0 p0 omega0 ~goal in
      let result = Heuristic.run r0 p0 omega0 ~oracle in
      List.iter
        (fun i ->
          Alcotest.(check bool)
            (Printf.sprintf "row %d implied consistently" i)
            (oracle i)
            (Semijoin.selects r0 p0 omega0 result.predicate i))
        result.implied)
    [ [ (0, 1) ]; [ (0, 0); (1, 2) ]; [] ]

let test_heuristic_respects_budget () =
  let goal = pred0 [ (0, 0); (1, 2) ] in
  let result =
    Heuristic.run ~max_queries:1 r0 p0 omega0
      ~oracle:(Heuristic.honest_oracle r0 p0 omega0 ~goal)
  in
  Alcotest.(check int) "one query" 1 result.n_queries

let test_heuristic_random_instances () =
  (* Random small instances: the heuristic always halts with a predicate
     semijoin-equivalent to the goal. *)
  let prng = Prng.create 77 in
  for _ = 1 to 25 do
    let r, p =
      Jqi_synth.Synth.generate prng (Jqi_synth.Synth.config 2 2 4 3)
    in
    let omega = Omega.of_schemas (Relation.schema r) (Relation.schema p) in
    let goal =
      (* A random predicate over Ω. *)
      List.fold_left
        (fun acc k -> if Prng.bool prng then Bits.add acc k else acc)
        (Omega.empty omega)
        (List.init (Omega.width omega) Fun.id)
    in
    let result =
      Heuristic.run r p omega ~oracle:(Heuristic.honest_oracle r p omega ~goal)
    in
    Alcotest.(check bool) "semijoin-equivalent" true
      (Int_set.equal (selected r p omega goal) (selected r p omega result.predicate))
  done

let test_minimality_basic () =
  (* Positive-only sample {t2, t4} on Example 2.1: the most specific
     consistent equijoin θ0 = {(A1,B1),(A2,B3)} selects exactly {t2,t4},
     which is minimal (it equals the positives). *)
  let pos = [ 1; 3 ] in
  Alcotest.(check bool) "θ0 minimal" true
    (Minimality.is_minimal r0 p0 omega0 ~pos (pred0 [ (0, 0); (1, 2) ]));
  (* ∅ selects everything, never minimal when a smaller consistent
     selection exists. *)
  Alcotest.(check bool) "∅ not minimal" false
    (Minimality.is_minimal r0 p0 omega0 ~pos (pred0 []))

let test_minimality_requires_selecting_positives () =
  (* A predicate that misses a positive is not minimal by definition. *)
  Alcotest.(check bool) "rejecting positive fails" false
    (Minimality.is_minimal r0 p0 omega0 ~pos:[ 0 ] (Omega.full omega0))

let test_minimal_results_structure () =
  let results = Minimality.minimal_results r0 p0 omega0 ~pos:[ 1 ] in
  Alcotest.(check bool) "at least one minimum" true (results <> []);
  (* Every reported minimum contains the positives and is ⊆-incomparable
     with the others. *)
  List.iter
    (fun (theta, sel) ->
      Alcotest.(check bool) "contains positive" true (Int_set.mem 1 sel);
      Alcotest.(check bool) "witness matches set" true
        (Int_set.equal sel (selected r0 p0 omega0 theta));
      List.iter
        (fun (_, sel') ->
          if not (Int_set.equal sel sel') then
            Alcotest.(check bool) "incomparable" false (Int_set.subset sel' sel))
        results)
    results

let test_minimality_width_guard () =
  let db = Jqi_tpch.Tpch.generate ~scale:1 () in
  let omega =
    Omega.of_schemas (Relation.schema db.orders) (Relation.schema db.lineitem)
  in
  Alcotest.(check bool) "guard raises" true
    (try
       ignore (Minimality.is_minimal db.orders db.lineitem omega ~pos:[ 0 ]
                 (Omega.empty omega));
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "heuristic recovers goal semantics" `Quick test_heuristic_recovers_goal_semantics;
    Alcotest.test_case "heuristic accounting" `Quick test_heuristic_skips_certain;
    Alcotest.test_case "heuristic implied rows correct" `Quick test_heuristic_implied_rows_correct;
    Alcotest.test_case "heuristic budget" `Quick test_heuristic_respects_budget;
    Alcotest.test_case "heuristic on random instances" `Quick test_heuristic_random_instances;
    Alcotest.test_case "minimality basics" `Quick test_minimality_basic;
    Alcotest.test_case "minimality needs positives" `Quick test_minimality_requires_selecting_positives;
    Alcotest.test_case "minimal results structure" `Quick test_minimal_results_structure;
    Alcotest.test_case "minimality width guard" `Quick test_minimality_width_guard;
  ]
