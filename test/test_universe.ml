(* The signature quotient of the Cartesian product. *)

open Fixtures
module Bits = Jqi_util.Bits
module Relation = Jqi_relational.Relation
module Tuple = Jqi_relational.Tuple
module Value = Jqi_relational.Value
module Schema = Jqi_relational.Schema
module Omega = Jqi_core.Omega
module Universe = Jqi_core.Universe
module Tsig = Jqi_core.Tsig

let test_example_2_1_classes () =
  (* Example 2.1: all 12 tuples have distinct signatures (§5.3). *)
  Alcotest.(check int) "12 classes" 12 (Universe.n_classes universe0);
  Alcotest.(check int) "12 tuples" 12 (Universe.total_tuples universe0);
  Array.iter
    (fun (c : Universe.cls) -> Alcotest.(check int) "count 1" 1 c.count)
    (Universe.classes universe0)

let test_join_ratio_example () =
  (* §5.3 computes the join ratio of Example 2.1 as exactly 2. *)
  Alcotest.(check (float 1e-9)) "join ratio 2" 2.0 (Universe.join_ratio universe0)

let test_grouping () =
  (* Duplicate rows collapse into one class with multiplicity. *)
  let r =
    Relation.of_list ~name:"r" ~schema:(Schema.of_names ~ty:Value.TInt [ "a" ])
      [ Tuple.ints [ 1 ]; Tuple.ints [ 1 ]; Tuple.ints [ 2 ] ]
  in
  let p =
    Relation.of_list ~name:"p" ~schema:(Schema.of_names ~ty:Value.TInt [ "b" ])
      [ Tuple.ints [ 1 ] ]
  in
  let u = Universe.build r p in
  Alcotest.(check int) "2 classes" 2 (Universe.n_classes u);
  Alcotest.(check int) "3 tuples" 3 (Universe.total_tuples u);
  let matching =
    Option.get (Universe.find_class u (Omega.of_pairs (Universe.omega u) [ (0, 0) ]))
  in
  Alcotest.(check int) "multiplicity 2" 2 (Universe.count u matching)

let test_representative () =
  match Universe.representative universe0 (class0 (2, 2)) with
  | None -> Alcotest.fail "expected representative"
  | Some (tr, tp) ->
      Alcotest.check tuple_testable "left rep" (Tuple.ints [ 0; 2 ]) tr;
      Alcotest.check tuple_testable "right rep" (Tuple.ints [ 0; 1; 2 ]) tp

let test_selected_classes () =
  (* θ1 = {(A1,B1),(A2,B3)} selects exactly (t2,t'2) and (t4,t'1)
     (Example 2.1's join results). *)
  let sel = Universe.selected_classes universe0 (pred0 [ (0, 0); (1, 2) ]) in
  Alcotest.(check (list int)) "selected"
    (List.sort compare [ class0 (2, 2); class0 (4, 1) ])
    (List.sort compare sel);
  (* Ω selects nothing here, ∅ selects everything. *)
  Alcotest.(check int) "omega selects none" 0
    (List.length (Universe.selected_classes universe0 (Omega.full omega0)));
  Alcotest.(check int) "empty selects all" 12
    (List.length (Universe.selected_classes universe0 (Omega.empty omega0)))

let test_equivalent () =
  (* §3.3: on the single-tuple instance R1/P1, every predicate over Ω is
     instance-equivalent to the goal. *)
  let r1 =
    Relation.of_list ~name:"R1" ~schema:(Schema.of_names ~ty:Value.TInt [ "A1"; "A2" ])
      [ Tuple.ints [ 1; 1 ] ]
  in
  let p1 =
    Relation.of_list ~name:"P1" ~schema:(Schema.of_names ~ty:Value.TInt [ "B1" ])
      [ Tuple.ints [ 1 ] ]
  in
  let u = Universe.build r1 p1 in
  let o = Universe.omega u in
  List.iter
    (fun theta ->
      Alcotest.(check bool) "all equivalent" true
        (Universe.equivalent u theta (Omega.of_pairs o [ (0, 0) ])))
    (Omega.all_predicates o);
  (* On Example 2.1, θ1 and θ2 of Example 2.1 are NOT equivalent. *)
  Alcotest.(check bool) "different joins differ" false
    (Universe.equivalent universe0
       (pred0 [ (0, 0); (1, 2) ])
       (pred0 [ (1, 1) ]))

let test_signature_consistency () =
  (* Every class signature equals T of its representative. *)
  for i = 0 to Universe.n_classes universe0 - 1 do
    match Universe.representative universe0 i with
    | None -> Alcotest.fail "no representative"
    | Some (tr, tp) ->
        Alcotest.check bits_testable "sig = T(rep)"
          (Universe.signature universe0 i)
          (Tsig.of_tuples omega0 tr tp)
  done

let test_of_signature_list_merges () =
  let o = Omega.create ~n:2 ~m:2 () in
  let s = Omega.of_pairs o [ (0, 0) ] in
  let u =
    Universe.of_signature_list o [ (s, 2, (0, 0)); (s, 3, (1, 1)); (Omega.empty o, 1, (0, 1)) ]
  in
  Alcotest.(check int) "merged classes" 2 (Universe.n_classes u);
  Alcotest.(check int) "total" 6 (Universe.total_tuples u)

let test_empty_product_rejected () =
  let r =
    Relation.of_list ~name:"r" ~schema:(Schema.of_names ~ty:Value.TInt [ "a" ]) []
  in
  let p =
    Relation.of_list ~name:"p" ~schema:(Schema.of_names ~ty:Value.TInt [ "b" ])
      [ Tuple.ints [ 1 ] ]
  in
  Alcotest.(check bool) "raises" true
    (try ignore (Universe.build r p); false with Invalid_argument _ -> true)

let test_parallel_equals_sequential () =
  (* Identical universes — classes, counts and representatives — for any
     domain count, on Example 2.1 and on a bigger synthetic instance. *)
  let check_same u1 u2 =
    Alcotest.(check int) "same class count" (Universe.n_classes u1)
      (Universe.n_classes u2);
    for i = 0 to Universe.n_classes u1 - 1 do
      Alcotest.check Fixtures.bits_testable "same signature"
        (Universe.signature u1 i) (Universe.signature u2 i);
      Alcotest.(check int) "same count" (Universe.count u1 i)
        (Universe.count u2 i);
      Alcotest.(check (array int)) "same representative"
        (Universe.cls u1 i).Universe.rep (Universe.cls u2 i).Universe.rep
    done
  in
  List.iter
    (fun domains -> check_same universe0 (Universe.build_parallel ~domains r0 p0))
    [ 1; 2; 3; 8 ];
  let prng = Jqi_util.Prng.create 31 in
  let rs, ps = Jqi_synth.Synth.generate prng (Jqi_synth.Synth.config 3 3 60 20) in
  check_same (Universe.build rs ps) (Universe.build_parallel ~domains:4 rs ps)

let suite =
  [
    Alcotest.test_case "example 2.1 classes" `Quick test_example_2_1_classes;
    Alcotest.test_case "parallel build = sequential" `Quick test_parallel_equals_sequential;
    Alcotest.test_case "join ratio (§5.3 example)" `Quick test_join_ratio_example;
    Alcotest.test_case "grouping with multiplicity" `Quick test_grouping;
    Alcotest.test_case "representative" `Quick test_representative;
    Alcotest.test_case "selected classes" `Quick test_selected_classes;
    Alcotest.test_case "instance equivalence" `Quick test_equivalent;
    Alcotest.test_case "signatures match representatives" `Quick test_signature_consistency;
    Alcotest.test_case "of_signature_list merges" `Quick test_of_signature_list_merges;
    Alcotest.test_case "empty product rejected" `Quick test_empty_product_rejected;
  ]
