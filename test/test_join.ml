(* Join evaluation: hash join vs nested loops (qcheck), semijoin/antijoin
   laws, NULL behaviour, anti-monotonicity w.r.t. the predicate. *)

module Value = Jqi_relational.Value
module Schema = Jqi_relational.Schema
module Tuple = Jqi_relational.Tuple
module Relation = Jqi_relational.Relation
module Join = Jqi_relational.Join
module Index = Jqi_relational.Index

let rel name cols rows =
  Relation.of_list ~name ~schema:(Schema.of_names ~ty:Value.TInt cols)
    (List.map Tuple.ints rows)

let r = rel "r" [ "a"; "b" ] [ [ 1; 10 ]; [ 2; 20 ]; [ 3; 10 ] ]
let p = rel "p" [ "c"; "d" ] [ [ 1; 10 ]; [ 2; 99 ]; [ 9; 10 ] ]

let test_equijoin_basic () =
  let j = Join.equijoin r p [ (0, 0) ] in
  Alcotest.(check int) "matches on keys" 2 (Relation.cardinality j);
  let j2 = Join.equijoin r p [ (1, 1) ] in
  (* b=d: 10 appears twice in r and twice in p -> 4 pairs; 20/99 none. *)
  Alcotest.(check int) "value join" 4 (Relation.cardinality j2);
  let j3 = Join.equijoin r p [ (0, 0); (1, 1) ] in
  Alcotest.(check int) "conjunction" 1 (Relation.cardinality j3)

let test_empty_predicate_is_product () =
  let j = Join.equijoin r p [] in
  Alcotest.(check int) "cartesian" 9 (Relation.cardinality j)

let test_semijoin () =
  let s = Join.semijoin r p [ (0, 0) ] in
  Alcotest.(check int) "rows of r with partner" 2 (Relation.cardinality s);
  let a = Join.antijoin r p [ (0, 0) ] in
  Alcotest.(check int) "antijoin complement" 1 (Relation.cardinality a);
  Alcotest.(check int) "semi + anti = r" (Relation.cardinality r)
    (Relation.cardinality s + Relation.cardinality a)

let test_semijoin_empty_p () =
  let empty_p = rel "p" [ "c"; "d" ] [] in
  Alcotest.(check int) "semijoin with empty P is empty" 0
    (Relation.cardinality (Join.semijoin r empty_p []));
  Alcotest.(check int) "even with empty predicate" 0
    (Relation.cardinality (Join.semijoin r empty_p [ (0, 0) ]))

let test_null_never_joins () =
  let rn =
    Relation.of_list ~name:"rn" ~schema:(Schema.of_names ~ty:Value.TInt [ "a" ])
      [ Tuple.of_list [ Value.Null ]; Tuple.of_list [ Value.Int 1 ] ]
  in
  let pn =
    Relation.of_list ~name:"pn" ~schema:(Schema.of_names ~ty:Value.TInt [ "b" ])
      [ Tuple.of_list [ Value.Null ]; Tuple.of_list [ Value.Int 1 ] ]
  in
  Alcotest.(check int) "only 1=1 joins" 1
    (Relation.cardinality (Join.equijoin rn pn [ (0, 0) ]));
  Alcotest.(check int) "nested loop agrees" 1
    (Relation.cardinality (Join.equijoin_nested rn pn [ (0, 0) ]))

let test_predicate_of_names () =
  let theta = Join.predicate_of_names r p [ ("a", "d"); ("b", "c") ] in
  Alcotest.(check (list (pair int int))) "resolved" [ (0, 1); (1, 0) ] theta

let test_bad_predicate_rejected () =
  Alcotest.check_raises "bad column" (Invalid_argument "Join: bad left column 5")
    (fun () -> ignore (Join.equijoin r p [ (5, 0) ]))

let test_index () =
  let idx = Index.build p ~columns:[ 1 ] in
  Alcotest.(check int) "distinct keys" 2 (Index.distinct_keys idx);
  Alcotest.(check (list int)) "probe 10" [ 2; 0 ]
    (Index.probe idx ~probe_columns:[ 1 ] (Tuple.ints [ 0; 10 ]));
  Alcotest.(check (list int)) "probe miss" []
    (Index.probe idx ~probe_columns:[ 1 ] (Tuple.ints [ 0; 55 ]))

(* qcheck: hash join = nested-loop join on random instances, including
   NULLs and repeated values. *)
let gen_instance =
  QCheck.Gen.(
    let cell = frequency [ (5, map (fun i -> Value.Int i) (int_bound 4)); (1, return Value.Null) ] in
    let row arity = map Tuple.of_list (list_repeat arity cell) in
    let* ra = int_range 1 3 and* pa = int_range 1 3 in
    let* rrows = list_size (int_bound 8) (row ra)
    and* prows = list_size (int_bound 8) (row pa) in
    let* npairs = int_bound 3 in
    let* pairs =
      list_repeat npairs (pair (int_bound (ra - 1)) (int_bound (pa - 1)))
    in
    return (ra, pa, rrows, prows, pairs))

let relation_of name prefix arity rows =
  Relation.of_list ~name
    ~schema:
      (Schema.of_names ~ty:Value.TInt
         (List.init arity (fun i -> Printf.sprintf "%s%d" prefix i)))
    rows

let qcheck_hash_vs_nested =
  QCheck.Test.make ~name:"hash join = nested-loop join" ~count:300
    (QCheck.make gen_instance)
    (fun (ra, pa, rrows, prows, pairs) ->
      let r = relation_of "r" "a" ra rrows and p = relation_of "p" "b" pa prows in
      Relation.equal_contents (Join.equijoin r p pairs) (Join.equijoin_nested r p pairs))

let qcheck_semijoin_agrees =
  QCheck.Test.make ~name:"hash semijoin = nested semijoin" ~count:300
    (QCheck.make gen_instance)
    (fun (ra, pa, rrows, prows, pairs) ->
      let r = relation_of "r" "a" ra rrows and p = relation_of "p" "b" pa prows in
      Relation.equal_contents (Join.semijoin r p pairs) (Join.semijoin_nested r p pairs))

let qcheck_semijoin_is_projected_join =
  QCheck.Test.make ~name:"semijoin = project(equijoin)" ~count:300
    (QCheck.make gen_instance)
    (fun (ra, pa, rrows, prows, pairs) ->
      let r = relation_of "r" "a" ra rrows and p = relation_of "p" "b" pa prows in
      let semi = Jqi_relational.Algebra.distinct (Join.semijoin r p pairs) in
      let proj =
        Jqi_relational.Algebra.distinct
          (Jqi_relational.Algebra.project (Join.equijoin r p pairs)
             (Schema.names (Relation.schema r)))
      in
      (* Projection of the join renames nothing here because the generated
         column names are disjoint. *)
      Relation.equal_contents semi proj)

(* Differential property suite: an INDEPENDENT nested-loop reference join
   written here in the test — not [Join.equijoin_nested], which shares the
   production [matches]/[Value.eq] code — compared as a multiset.
   [Relation.equal_contents] is set-based, so these are the only tests that
   would catch a duplicate-dropping or duplicate-double-counting bug in the
   hash join.  NULL semantics are restated from scratch: a NULL on either
   side of any equality disqualifies the pair. *)
let reference_join r p (pairs : (int * int) list) =
  let pair_matches tr tp (i, j) =
    match (Tuple.get tr i, Tuple.get tp j) with
    | Value.Null, _ | _, Value.Null -> false
    | a, b -> Value.compare a b = 0
  in
  List.concat_map
    (fun tr ->
      List.filter_map
        (fun tp ->
          if List.for_all (pair_matches tr tp) pairs then
            Some (Tuple.concat tr tp)
          else None)
        (Relation.to_list p))
    (Relation.to_list r)

let multiset rel = List.sort Tuple.compare (Relation.to_list rel)
let multiset_list rows = List.sort Tuple.compare rows

(* Duplicate-heavy variant of [gen_instance]: values drawn from {0, 1,
   NULL} over up to 16 rows per side, so nearly every key repeats and the
   hash buckets hold long chains. *)
let gen_instance_dups =
  QCheck.Gen.(
    let cell =
      frequency
        [ (3, map (fun i -> Value.Int i) (int_bound 1)); (1, return Value.Null) ]
    in
    let row arity = map Tuple.of_list (list_repeat arity cell) in
    let* ra = int_range 1 2 and* pa = int_range 1 2 in
    let* rrows = list_size (int_bound 16) (row ra)
    and* prows = list_size (int_bound 16) (row pa) in
    let* npairs = int_bound 2 in
    let* pairs =
      list_repeat npairs (pair (int_bound (ra - 1)) (int_bound (pa - 1)))
    in
    return (ra, pa, rrows, prows, pairs))

let qcheck_hash_vs_reference_multiset =
  QCheck.Test.make ~name:"hash join = independent reference (multiset)"
    ~count:300 (QCheck.make gen_instance)
    (fun (ra, pa, rrows, prows, pairs) ->
      let r = relation_of "r" "a" ra rrows and p = relation_of "p" "b" pa prows in
      multiset (Join.equijoin r p pairs)
      = multiset_list (reference_join r p pairs))

let qcheck_hash_vs_reference_dups =
  QCheck.Test.make
    ~name:"hash join = independent reference (duplicate-heavy multiset)"
    ~count:300 (QCheck.make gen_instance_dups)
    (fun (ra, pa, rrows, prows, pairs) ->
      let r = relation_of "r" "a" ra rrows and p = relation_of "p" "b" pa prows in
      multiset (Join.equijoin r p pairs)
      = multiset_list (reference_join r p pairs))

(* All-NULL key columns: column 0 on both sides is NULL in every row, and
   the join predicate always includes (0, 0).  SQL semantics say no pair
   qualifies, so the hash join and the independent multiset reference must
   both produce the empty multiset — a hash path keyed on a NULL = NULL
   equality (e.g. built from polymorphic compare or [Value.equal]) would
   disagree here on every nonempty instance. *)
let gen_null_key_instance =
  QCheck.Gen.(
    let data = map (fun i -> Value.Int i) (int_bound 3) in
    let row = map (fun v -> Tuple.of_list [ Value.Null; v ]) data in
    let* rrows = list_size (int_bound 12) row
    and* prows = list_size (int_bound 12) row in
    let* extra_pair = bool in
    let pairs = if extra_pair then [ (0, 0); (1, 1) ] else [ (0, 0) ] in
    return (rrows, prows, pairs))

let qcheck_null_keys_hash_vs_reference =
  QCheck.Test.make
    ~name:"all-NULL key columns: hash join = reference = empty multiset"
    ~count:300
    (QCheck.make gen_null_key_instance)
    (fun (rrows, prows, pairs) ->
      let r = relation_of "r" "a" 2 rrows and p = relation_of "p" "b" 2 prows in
      let hash = multiset (Join.equijoin r p pairs) in
      let reference = multiset_list (reference_join r p pairs) in
      hash = reference && hash = [])

let qcheck_null_never_joins =
  QCheck.Test.make ~name:"null never joins (property)" ~count:300
    (QCheck.make gen_instance_dups)
    (fun (ra, pa, rrows, prows, pairs) ->
      let r = relation_of "r" "a" ra rrows and p = relation_of "p" "b" pa prows in
      (* Every output row of a non-trivial equijoin is non-NULL on every
         join column, on both sides. *)
      pairs = []
      || Relation.fold
           (fun acc t ->
             acc
             && List.for_all
                  (fun (i, j) ->
                    (not (Value.is_null (Tuple.get t i)))
                    && not (Value.is_null (Tuple.get t (ra + j))))
                  pairs)
           true
           (Join.equijoin r p pairs))

let qcheck_anti_monotone =
  QCheck.Test.make ~name:"join anti-monotone in the predicate" ~count:300
    (QCheck.make gen_instance)
    (fun (ra, pa, rrows, prows, pairs) ->
      let r = relation_of "r" "a" ra rrows and p = relation_of "p" "b" pa prows in
      let bigger = Join.equijoin r p [] in
      let smaller = Join.equijoin r p pairs in
      Relation.fold
        (fun acc t -> acc && Relation.mem bigger t)
        true smaller
      && Relation.cardinality smaller <= Relation.cardinality bigger)

let suite =
  [
    Alcotest.test_case "equijoin basics" `Quick test_equijoin_basic;
    Alcotest.test_case "empty predicate = product" `Quick test_empty_predicate_is_product;
    Alcotest.test_case "semijoin/antijoin" `Quick test_semijoin;
    Alcotest.test_case "semijoin with empty P" `Quick test_semijoin_empty_p;
    Alcotest.test_case "null never joins" `Quick test_null_never_joins;
    Alcotest.test_case "predicate_of_names" `Quick test_predicate_of_names;
    Alcotest.test_case "bad predicate rejected" `Quick test_bad_predicate_rejected;
    Alcotest.test_case "hash index" `Quick test_index;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        qcheck_hash_vs_nested;
        qcheck_hash_vs_reference_multiset;
        qcheck_hash_vs_reference_dups;
        qcheck_null_keys_hash_vs_reference;
        qcheck_null_never_joins;
        qcheck_semijoin_agrees;
        qcheck_semijoin_is_projected_join;
        qcheck_anti_monotone;
      ]
