(* SAT substrate: DPLL vs brute force, Tseitin equisatisfiability, DIMACS
   round-trips, 3SAT plumbing. *)

module Cnf = Jqi_sat.Cnf
module Dpll = Jqi_sat.Dpll
module Formula = Jqi_sat.Formula
module Dimacs = Jqi_sat.Dimacs
module Threesat = Jqi_sat.Threesat
module Sat_brute = Jqi_sat.Brute
module Prng = Jqi_util.Prng

let cnf nvars clauses = Cnf.create ~nvars (List.map Array.of_list clauses)

let model_of = function
  | Dpll.Sat m -> m
  | Dpll.Unsat -> Alcotest.fail "expected SAT"

let test_trivial () =
  Alcotest.(check bool) "empty cnf is sat" true (Dpll.is_sat (cnf 0 []));
  Alcotest.(check bool) "unit sat" true (Dpll.is_sat (cnf 1 [ [ 1 ] ]));
  Alcotest.(check bool) "x and not x" false
    (Dpll.is_sat (cnf 1 [ [ 1 ]; [ -1 ] ]));
  Alcotest.(check bool) "empty clause" false (Dpll.is_sat (cnf 1 [ [] ]))

let test_model_satisfies () =
  let f = cnf 3 [ [ 1; 2 ]; [ -1; 3 ]; [ -2; -3 ]; [ 2; 3 ] ] in
  let m = model_of (Dpll.solve f) in
  Alcotest.(check bool) "model satisfies" true (Cnf.satisfied f m)

let test_chain_implications () =
  (* x1 → x2 → ... → x20, x1 forced: propagation must solve it without
     search. *)
  let n = 20 in
  let clauses = [ 1 ] :: List.init (n - 1) (fun i -> [ -(i + 1); i + 2 ]) in
  let m = model_of (Dpll.solve (cnf n clauses)) in
  for v = 1 to n do
    Alcotest.(check bool) (Printf.sprintf "x%d true" v) true m.(v)
  done

let test_pigeonhole_unsat () =
  (* 4 pigeons, 3 holes: var p*3+h+1 means pigeon p in hole h. *)
  let v p h = (p * 3) + h + 1 in
  let each_pigeon = List.init 4 (fun p -> List.init 3 (fun h -> v p h)) in
  let no_two =
    List.concat_map
      (fun h ->
        List.concat_map
          (fun p1 ->
            List.filter_map
              (fun p2 -> if p1 < p2 then Some [ -(v p1 h); -(v p2 h) ] else None)
              [ 0; 1; 2; 3 ])
          [ 0; 1; 2; 3 ])
      [ 0; 1; 2 ]
  in
  Alcotest.(check bool) "php(4,3) unsat" false
    (Dpll.is_sat (cnf 12 (each_pigeon @ no_two)))

let test_dpll_vs_brute_random () =
  let prng = Prng.create 7 in
  for _ = 1 to 200 do
    let nvars = 3 + Prng.int prng 8 in
    let nclauses = 1 + Prng.int prng (4 * nvars) in
    let inst = Threesat.random prng ~nvars ~nclauses in
    let f = Threesat.to_cnf inst in
    Alcotest.(check bool)
      (Fmt.str "dpll=brute on %a" Threesat.pp inst)
      (Sat_brute.is_sat f) (Dpll.is_sat f)
  done

let test_dpll_model_valid_random () =
  let prng = Prng.create 11 in
  for _ = 1 to 200 do
    let nvars = 3 + Prng.int prng 10 in
    let nclauses = 1 + Prng.int prng (3 * nvars) in
    let f = Threesat.to_cnf (Threesat.random prng ~nvars ~nclauses) in
    match Dpll.solve f with
    | Dpll.Unsat -> ()
    | Dpll.Sat m ->
        Alcotest.(check bool) "returned model satisfies" true (Cnf.satisfied f m)
  done

let test_tseitin_equisat () =
  let prng = Prng.create 13 in
  (* Random formula trees over 4 variables, compared against direct
     evaluation over all assignments. *)
  let rec random_formula depth =
    if depth = 0 then Formula.var (1 + Prng.int prng 4)
    else
      match Prng.int prng 4 with
      | 0 -> Formula.neg (random_formula (depth - 1))
      | 1 -> Formula.conj (List.init (1 + Prng.int prng 3) (fun _ -> random_formula (depth - 1)))
      | 2 -> Formula.disj (List.init (1 + Prng.int prng 3) (fun _ -> random_formula (depth - 1)))
      | _ -> Formula.var (1 + Prng.int prng 4)
  in
  for _ = 1 to 100 do
    let f = random_formula 3 in
    let directly_sat =
      let found = ref false in
      for mask = 0 to 15 do
        let a = Array.make 5 false in
        for v = 1 to 4 do
          a.(v) <- (mask lsr (v - 1)) land 1 = 1
        done;
        if Formula.eval a f then found := true
      done;
      !found
    in
    Alcotest.(check bool) "tseitin equisatisfiable" directly_sat
      (Dpll.is_sat (Formula.to_cnf f))
  done

let test_tseitin_constants () =
  Alcotest.(check bool) "true sat" true (Dpll.is_sat (Formula.to_cnf Formula.True));
  Alcotest.(check bool) "false unsat" false (Dpll.is_sat (Formula.to_cnf Formula.False));
  Alcotest.(check bool) "and [] sat" true (Dpll.is_sat (Formula.to_cnf (Formula.conj [])));
  Alcotest.(check bool) "or [] unsat" false (Dpll.is_sat (Formula.to_cnf (Formula.disj [])))

let test_dimacs_roundtrip () =
  let f = cnf 4 [ [ 1; -2; 3 ]; [ -1; 4 ]; [ 2 ] ] in
  let f' = Dimacs.parse_string (Dimacs.to_string f) in
  Alcotest.(check int) "nvars" (Cnf.nvars f) (Cnf.nvars f');
  Alcotest.(check (list (array int)))
    "clauses"
    (Cnf.clauses f)
    (Cnf.clauses f')

let test_dimacs_comments () =
  let f = Dimacs.parse_string "c a comment\np cnf 2 2\n1 -2 0\n2 0\n" in
  Alcotest.(check int) "clauses" 2 (Cnf.n_clauses f);
  Alcotest.(check bool) "sat" true (Dpll.is_sat f)

let test_simplify_tautology () =
  let f = Cnf.simplify (cnf 2 [ [ 1; -1 ]; [ 2 ] ]) in
  Alcotest.(check int) "tautology dropped" 1 (Cnf.n_clauses f)

let test_phi0_satisfiable () =
  Alcotest.(check bool) "phi0 sat" true
    (Dpll.is_sat (Threesat.to_cnf Threesat.phi0))

let test_threesat_eval () =
  let a = Array.make 5 false in
  a.(2) <- true;
  Alcotest.(check bool) "x2 satisfies phi0" true (Threesat.eval a Threesat.phi0)

let suite =
  [
    Alcotest.test_case "trivial formulas" `Quick test_trivial;
    Alcotest.test_case "model satisfies" `Quick test_model_satisfies;
    Alcotest.test_case "implication chain" `Quick test_chain_implications;
    Alcotest.test_case "pigeonhole unsat" `Quick test_pigeonhole_unsat;
    Alcotest.test_case "dpll vs brute (random 3sat)" `Quick test_dpll_vs_brute_random;
    Alcotest.test_case "dpll models valid (random)" `Quick test_dpll_model_valid_random;
    Alcotest.test_case "tseitin equisatisfiable" `Quick test_tseitin_equisat;
    Alcotest.test_case "tseitin constants" `Quick test_tseitin_constants;
    Alcotest.test_case "dimacs roundtrip" `Quick test_dimacs_roundtrip;
    Alcotest.test_case "dimacs comments" `Quick test_dimacs_comments;
    Alcotest.test_case "simplify drops tautologies" `Quick test_simplify_tautology;
    Alcotest.test_case "phi0 satisfiable" `Quick test_phi0_satisfiable;
    Alcotest.test_case "threesat eval" `Quick test_threesat_eval;
  ]
