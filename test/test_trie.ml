(* QCheck law suite for the sorted-array tries behind Leapfrog Triejoin:
   a full depth-first iterator walk re-emits exactly the sorted distinct
   key set with its grouped row ids; [seek] is monotone and lands on the
   least key >= target; [open_]/[up] are inverse level moves that keep
   the parent position; and every misuse of the low-level iterator
   raises [Invalid_argument] instead of corrupting state. *)

module Trie = Jqi_relational.Trie

let compare_key = List.compare Int.compare

(* Reference model: distinct keys in lex order, each with the ascending
   (duplicate-preserving) row ids of the entries that produced it. *)
let model entries =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (key, row) ->
      let k = Array.to_list key in
      let prev = Option.value ~default:[] (Hashtbl.find_opt tbl k) in
      Hashtbl.replace tbl k (row :: prev))
    entries;
  Hashtbl.fold (fun k rs acc -> (k, List.sort Int.compare rs) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare_key a b)

(* Full depth-first walk using only the iterator interface. *)
let walk t =
  let d = Trie.depth t in
  let it = Trie.iter t in
  let acc = ref [] in
  let rec go level prefix =
    Trie.open_ it;
    while not (Trie.at_end it) do
      let prefix' = Trie.key it :: prefix in
      if level = d - 1 then
        acc := (List.rev prefix', Array.to_list (Trie.rows it)) :: !acc
      else go (level + 1) prefix';
      Trie.next it
    done;
    Trie.up it
  in
  if d > 0 then go 0 [];
  List.rev !acc

let entry_list = Alcotest.(list (pair (list int) (list int)))

(* ------------------------------ units ------------------------------ *)

let test_create_validation () =
  Alcotest.check_raises "wrong key length"
    (Invalid_argument "Trie.create: key of length 1 in a depth-2 trie")
    (fun () -> ignore (Trie.create ~depth:2 [ ([| 1 |], 0) ]));
  Alcotest.check_raises "negative depth"
    (Invalid_argument "Trie.create: negative depth") (fun () ->
      ignore (Trie.create ~depth:(-1) []))

let test_small_walk () =
  let t =
    Trie.create ~depth:2
      [ ([| 2; 1 |], 4); ([| 1; 1 |], 0); ([| 1; 1 |], 2); ([| 1; 0 |], 7) ]
  in
  Alcotest.(check int) "size counts distinct keys" 3 (Trie.size t);
  Alcotest.check entry_list "walk emits sorted grouped keys"
    [ ([ 1; 0 ], [ 7 ]); ([ 1; 1 ], [ 0; 2 ]); ([ 2; 1 ], [ 4 ]) ]
    (walk t)

let test_empty_trie () =
  let t = Trie.create ~depth:2 [] in
  Alcotest.(check int) "empty size" 0 (Trie.size t);
  let it = Trie.iter t in
  Trie.open_ it;
  Alcotest.(check bool) "level 0 of empty trie is at the end" true
    (Trie.at_end it);
  Alcotest.check entry_list "walk of empty trie" [] (walk t)

let test_iterator_misuse () =
  let t = Trie.create ~depth:1 [ ([| 3 |], 0) ] in
  let root_raises name f =
    Alcotest.check_raises name
      (Invalid_argument (Printf.sprintf "Trie.%s: iterator at the root" name))
      (fun () -> f (Trie.iter t))
  in
  root_raises "key" (fun it -> ignore (Trie.key it));
  root_raises "next" Trie.next;
  root_raises "seek" (fun it -> Trie.seek it 0);
  root_raises "at_end" (fun it -> ignore (Trie.at_end it));
  root_raises "up" Trie.up;
  let it = Trie.iter t in
  Trie.open_ it;
  Alcotest.check_raises "open_ below the leaf level"
    (Invalid_argument "Trie.open_: already at the leaf level") (fun () ->
      Trie.open_ it);
  Trie.next it;
  Alcotest.check_raises "key past the end"
    (Invalid_argument "Trie.key: iterator at the end") (fun () ->
      ignore (Trie.key it));
  Alcotest.check_raises "next past the end"
    (Invalid_argument "Trie.next: iterator at the end") (fun () ->
      Trie.next it);
  Alcotest.check_raises "rows past the end"
    (Invalid_argument "Trie.rows: iterator at the end") (fun () ->
      ignore (Trie.rows it));
  let t2 = Trie.create ~depth:2 [ ([| 1; 2 |], 0) ] in
  let it2 = Trie.iter t2 in
  Trie.open_ it2;
  Alcotest.check_raises "rows off the leaf level"
    (Invalid_argument "Trie.rows: iterator not at the leaf level") (fun () ->
      ignore (Trie.rows it2))

(* ------------------------------ qcheck ----------------------------- *)

let gen_trie =
  QCheck.Gen.(
    let* depth = int_range 1 3 in
    let key = map Array.of_list (list_repeat depth (int_bound 4)) in
    let* entries = list_size (int_range 0 24) (pair key (int_bound 30)) in
    return (depth, entries))

let arb_trie =
  QCheck.make
    ~print:(fun (depth, entries) ->
      Printf.sprintf "depth=%d [%s]" depth
        (String.concat "; "
           (List.map
              (fun (k, r) ->
                Printf.sprintf "([%s], %d)"
                  (String.concat ";" (List.map string_of_int (Array.to_list k)))
                  r)
              entries)))
    gen_trie

let qcheck_walk_matches_model =
  QCheck.Test.make ~name:"full DFS walk = sorted grouped key set" ~count:300
    arb_trie (fun (depth, entries) ->
      let t = Trie.create ~depth entries in
      let expected = model entries in
      List.equal
        (fun (k1, r1) (k2, r2) ->
          List.equal Int.equal k1 k2 && List.equal Int.equal r1 r2)
        expected (walk t)
      && Int.equal (Trie.size t) (List.length expected)
      && List.equal (List.equal Int.equal)
           (List.map fst expected)
           (List.map Array.to_list (Array.to_list (Trie.keys t))))

(* The keys present at the current level of [it] (a fresh sibling scan
   via next from a copy of the position is not possible — iterators are
   single — so the law checks run against the model of the slice). *)
let qcheck_seek_least_upper_bound =
  QCheck.Test.make
    ~name:"seek is monotone and lands on the least key >= target" ~count:300
    QCheck.(pair arb_trie (small_list (QCheck.make Gen.(int_range (-1) 6))))
    (fun ((depth, entries), targets) ->
      let t = Trie.create ~depth entries in
      (* Walk every level of every subtrie; at each, replay the slice's
         key list and check seek against the model. *)
      let ok = ref true in
      let it = Trie.iter t in
      let rec go level =
        Trie.open_ it;
        (* collect the distinct keys of this slice *)
        let keys = ref [] in
        while not (Trie.at_end it) do
          keys := Trie.key it :: !keys;
          if level < depth - 1 then go (level + 1);
          Trie.next it
        done;
        let keys = List.rev !keys in
        (* replay: a second pass over the same slice testing seek *)
        Trie.up it;
        Trie.open_ it;
        List.iter
          (fun target ->
            if not (Trie.at_end it) then begin
              let before = Trie.key it in
              Trie.seek it target;
              let expect =
                List.find_opt (fun k -> k >= target && k >= before) keys
              in
              (match expect with
              | None -> ok := !ok && Trie.at_end it
              | Some k ->
                  ok :=
                    !ok && (not (Trie.at_end it)) && Int.equal (Trie.key it) k)
            end)
          targets;
        Trie.up it
      in
      if Trie.size t > 0 then go 0;
      !ok)

let qcheck_open_up_invariants =
  QCheck.Test.make ~name:"open_/up level moves restore the parent position"
    ~count:300 arb_trie (fun (depth, entries) ->
      let t = Trie.create ~depth entries in
      let ok = ref true in
      let it = Trie.iter t in
      let rec go level =
        Trie.open_ it;
        ok := !ok && Int.equal (Trie.level it) level;
        while not (Trie.at_end it) do
          let here = Trie.key it in
          if level < depth - 1 then begin
            go (level + 1);
            (* up restored both the level and the parent key *)
            ok :=
              !ok && Int.equal (Trie.level it) level
              && Int.equal (Trie.key it) here
          end;
          Trie.next it
        done;
        Trie.up it;
        ok := !ok && Int.equal (Trie.level it) (level - 1)
      in
      ok := Int.equal (Trie.level it) (-1);
      if Trie.size t > 0 then go 0;
      !ok && Int.equal (Trie.level it) (-1))

let qcheck_rows_partition =
  QCheck.Test.make ~name:"leaf rows partition the entry multiset" ~count:300
    arb_trie (fun (depth, entries) ->
      let t = Trie.create ~depth entries in
      let emitted =
        List.concat_map (fun (_, rows) -> rows) (walk t)
        |> List.sort Int.compare
      in
      let expected = List.sort Int.compare (List.map snd entries) in
      List.equal Int.equal emitted expected)

let suite =
  [
    Alcotest.test_case "create validates input" `Quick test_create_validation;
    Alcotest.test_case "small walk" `Quick test_small_walk;
    Alcotest.test_case "empty trie" `Quick test_empty_trie;
    Alcotest.test_case "iterator misuse raises" `Quick test_iterator_misuse;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        qcheck_walk_matches_model;
        qcheck_seek_least_upper_bound;
        qcheck_open_up_invariants;
        qcheck_rows_partition;
      ]
