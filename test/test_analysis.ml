(* Instance analysis (§5.3-derived pre-flight report). *)

open Fixtures
module Analysis = Jqi_core.Analysis
module Universe = Jqi_core.Universe

let a0 = Analysis.analyze universe0

let test_example_2_1_numbers () =
  Alcotest.(check int) "product" 12 a0.product_size;
  Alcotest.(check int) "classes" 12 a0.n_classes;
  Alcotest.(check (float 1e-9)) "join ratio" 2.0 a0.join_ratio;
  Alcotest.(check int) "max size" 3 a0.max_signature_size;
  (* Figure 3: 1 empty, 1 singleton, 7 pairs, 3 triples. *)
  Alcotest.(check bool) "histogram" true
    (Array.to_list a0.size_histogram = [ (0, 1); (1, 1); (2, 7); (3, 3) ]);
  Alcotest.(check int) "maximal" 7 a0.n_maximal;
  Alcotest.(check bool) "empty signature" true a0.has_empty_signature;
  Alcotest.(check (option int)) "lattice count" (Some 22) a0.non_nullable_count

let test_histogram_sums_to_classes () =
  let total = Array.fold_left (fun acc (_, n) -> acc + n) 0 a0.size_histogram in
  Alcotest.(check int) "sums" a0.n_classes total

let test_recommendation_regimes () =
  (* Flat lattice (join ratio 1) → TD; Example 2.1 (ratio 2) → L2S. *)
  let flat =
    let module R = Jqi_relational.Relation in
    let module T = Jqi_relational.Tuple in
    let module S = Jqi_relational.Schema in
    Universe.build
      (R.of_list ~name:"r" ~schema:(S.of_names ~ty:Jqi_relational.Value.TInt [ "a" ])
         [ T.ints [ 1 ]; T.ints [ 2 ] ])
      (R.of_list ~name:"p" ~schema:(S.of_names ~ty:Jqi_relational.Value.TInt [ "b" ])
         [ T.ints [ 1 ] ])
  in
  let fa = Analysis.analyze flat in
  Alcotest.(check bool) "flat recommends TD" true
    (String.length fa.recommendation > 2 && String.sub fa.recommendation 0 2 = "TD");
  Alcotest.(check bool) "rich recommends L2S" true
    (String.length a0.recommendation > 3 && String.sub a0.recommendation 0 3 = "L2S")

let test_large_class_count_recommendation () =
  (* > 400 classes triggers the L2S-cost warning branch. *)
  let omega = Jqi_core.Omega.create ~n:2 ~m:5 () in
  let sigs =
    List.init 500 (fun k ->
        (* 500 distinct subsets of the 10-bit universe. *)
        let bits =
          List.filter (fun b -> (k + 1) lsr b land 1 = 1) (List.init 10 Fun.id)
        in
        (Jqi_util.Bits.of_list 10 bits, 1, (k, 0)))
  in
  let u = Universe.of_signature_list omega sigs in
  let a = Analysis.analyze u in
  Alcotest.(check bool) "many classes" true (a.n_classes > 400);
  Alcotest.(check bool) "recommends TD or L1S" true
    (String.length a.recommendation >= 9
    && String.sub a.recommendation 0 9 = "TD or L1S")

let test_pp () =
  Alcotest.(check bool) "pp nonempty" true
    (String.length (Fmt.str "%a" Analysis.pp a0) > 0)

let suite =
  [
    Alcotest.test_case "example 2.1 numbers" `Quick test_example_2_1_numbers;
    Alcotest.test_case "histogram consistency" `Quick test_histogram_sums_to_classes;
    Alcotest.test_case "recommendation regimes" `Quick test_recommendation_regimes;
    Alcotest.test_case "large class count" `Quick test_large_class_count_recommendation;
    Alcotest.test_case "pp" `Quick test_pp;
  ]
