(* Ω indexing: the bijection between bit positions and attribute pairs. *)

module Omega = Jqi_core.Omega
module Bits = Jqi_util.Bits

let omega = Omega.create ~n:3 ~m:4 ()

let test_width () =
  Alcotest.(check int) "width" 12 (Omega.width omega);
  Alcotest.(check int) "left" 3 (Omega.left_arity omega);
  Alcotest.(check int) "right" 4 (Omega.right_arity omega)

let test_bijection () =
  for k = 0 to Omega.width omega - 1 do
    let i, j = Omega.pair omega k in
    Alcotest.(check int) "roundtrip" k (Omega.index omega i j)
  done;
  (* All (i,j) map to distinct indices. *)
  let seen = Hashtbl.create 12 in
  for i = 0 to 2 do
    for j = 0 to 3 do
      let k = Omega.index omega i j in
      Alcotest.(check bool) "fresh" false (Hashtbl.mem seen k);
      Hashtbl.add seen k ()
    done
  done

let test_bounds () =
  Alcotest.(check bool) "index out of range raises" true
    (try ignore (Omega.index omega 3 0); false with Invalid_argument _ -> true);
  Alcotest.(check bool) "pair out of range raises" true
    (try ignore (Omega.pair omega 12); false with Invalid_argument _ -> true);
  Alcotest.(check bool) "zero arity rejected" true
    (try ignore (Omega.create ~n:0 ~m:1 ()); false with Invalid_argument _ -> true)

let test_pairs_roundtrip () =
  let pred = Omega.of_pairs omega [ (0, 3); (2, 1) ] in
  Alcotest.(check (list (pair int int))) "to_pairs" [ (0, 3); (2, 1) ]
    (Omega.to_pairs omega pred);
  Alcotest.(check int) "cardinal" 2 (Bits.cardinal pred)

let test_names () =
  let o =
    Omega.create ~r_names:[| "x"; "y" |] ~p_names:[| "u" |] ~n:2 ~m:1 ()
  in
  Alcotest.(check string) "r_name" "y" (Omega.r_name o 1);
  Alcotest.(check string) "p_name" "u" (Omega.p_name o 0);
  let pred = Omega.of_names o [ ("y", "u") ] in
  Alcotest.(check (list (pair int int))) "resolved" [ (1, 0) ] (Omega.to_pairs o pred);
  Alcotest.(check string) "pp" "{(y,u)}" (Omega.pred_to_string o pred);
  Alcotest.(check string) "pp empty" "{}" (Omega.pred_to_string o (Omega.empty o));
  Alcotest.(check bool) "unknown name raises" true
    (try ignore (Omega.of_names o [ ("z", "u") ]); false
     with Invalid_argument _ -> true)

let test_default_names () =
  (* Default names follow the paper: A1..An and B1..Bm, 1-based. *)
  Alcotest.(check string) "A1" "A1" (Omega.r_name omega 0);
  Alcotest.(check string) "B4" "B4" (Omega.p_name omega 3)

let test_all_predicates_count () =
  let o = Omega.create ~n:1 ~m:3 () in
  Alcotest.(check int) "2^3" 8 (List.length (Omega.all_predicates o))

let suite =
  [
    Alcotest.test_case "width/arities" `Quick test_width;
    Alcotest.test_case "index bijection" `Quick test_bijection;
    Alcotest.test_case "bounds" `Quick test_bounds;
    Alcotest.test_case "pairs roundtrip" `Quick test_pairs_roundtrip;
    Alcotest.test_case "named attributes" `Quick test_names;
    Alcotest.test_case "default names" `Quick test_default_names;
    Alcotest.test_case "all_predicates count" `Quick test_all_predicates_count;
  ]
