(* Certificates: minimal evidence for an inference result. *)

open Fixtures
module Bits = Jqi_util.Bits
module Prng = Jqi_util.Prng
module Universe = Jqi_core.Universe
module State = Jqi_core.State
module Strategy = Jqi_core.Strategy
module Oracle = Jqi_core.Oracle
module Inference = Jqi_core.Inference
module Certificate = Jqi_core.Certificate

let finished_state ~goal strategy =
  (Inference.run universe0 strategy (Oracle.honest ~goal)).state

let test_certificate_invariants () =
  List.iter
    (fun goal ->
      List.iter
        (fun strategy ->
          let st = finished_state ~goal strategy in
          let cert = Certificate.of_state st in
          Alcotest.(check bool) "irredundant" true
            (Certificate.is_irredundant universe0 cert);
          Alcotest.(check bool) "no larger than the session" true
            (Certificate.size cert <= State.n_interactions st);
          Alcotest.check bits_testable "same predicate" (State.inferred st)
            cert.predicate;
          (* Every certificate example keeps its session label. *)
          List.iter
            (fun (cls, lbl) ->
              Alcotest.(check (option label_testable)) "label preserved"
                (Some lbl) (State.label_of st cls))
            cert.examples)
        [ Strategy.bu; Strategy.td; Strategy.l2s ])
    [ pred0 []; pred0 [ (0, 2) ]; pred0 [ (0, 0); (1, 2) ]; Omega.full omega0 ]

let test_certificate_shrinks_bu () =
  (* The BU run on goal Ω labels many tuples; the certificate keeps only
     what pins the answer. *)
  let st = finished_state ~goal:(Omega.full omega0) Strategy.bu in
  let cert = Certificate.of_state st in
  Alcotest.(check bool)
    (Printf.sprintf "shrank (%d -> %d)" (State.n_interactions st)
       (Certificate.size cert))
    true
    (Certificate.size cert < State.n_interactions st)

let test_unfinished_rejected () =
  let st = State.create universe0 in
  State.label st (class0 (2, 2)) Jqi_core.Sample.Positive;
  Alcotest.(check bool) "raises" true
    (try ignore (Certificate.of_state st); false with Invalid_argument _ -> true)

let test_random_instances () =
  let prng = Prng.create 19 in
  for _ = 1 to 30 do
    let r, p = Jqi_synth.Synth.generate prng (Jqi_synth.Synth.config 2 2 6 3) in
    let universe = Universe.build r p in
    let goals =
      Jqi_core.Omega.empty (Universe.omega universe)
      :: Universe.signatures universe
    in
    let goal = Prng.pick_list prng goals in
    let result = Inference.run universe Strategy.td (Oracle.honest ~goal) in
    let cert = Certificate.of_state result.state in
    Alcotest.(check bool) "irredundant" true
      (Certificate.is_irredundant universe cert)
  done

let test_pp () =
  let st = finished_state ~goal:(pred0 [ (0, 2) ]) Strategy.td in
  let cert = Certificate.of_state st in
  Alcotest.(check bool) "pp nonempty" true
    (String.length (Fmt.str "%a" (Certificate.pp universe0) cert) > 0)

let suite =
  [
    Alcotest.test_case "invariants across strategies/goals" `Quick test_certificate_invariants;
    Alcotest.test_case "shrinks a BU transcript" `Quick test_certificate_shrinks_bu;
    Alcotest.test_case "unfinished rejected" `Quick test_unfinished_rejected;
    Alcotest.test_case "random instances" `Quick test_random_instances;
    Alcotest.test_case "pp" `Quick test_pp;
  ]
