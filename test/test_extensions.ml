(* Extension features on the core: majority-vote oracles, the hybrid
   strategy, sampled universes, query-by-output. *)

open Fixtures
module Bits = Jqi_util.Bits
module Prng = Jqi_util.Prng
module Universe = Jqi_core.Universe
module Strategy = Jqi_core.Strategy
module Oracle = Jqi_core.Oracle
module Inference = Jqi_core.Inference
module Sample = Jqi_core.Sample
module Qbe = Jqi_core.Qbe
module Omega = Jqi_core.Omega

(* ------------------------- majority oracle ------------------------ *)

let test_majority_validation () =
  let base = Oracle.honest ~goal:(pred0 []) in
  Alcotest.(check bool) "even votes rejected" true
    (try ignore (Oracle.majority ~votes:2 base); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "zero votes rejected" true
    (try ignore (Oracle.majority ~votes:0 base); false
     with Invalid_argument _ -> true)

let test_majority_fixes_noise () =
  (* A 20%-noisy labeler wrapped in a 15-vote majority recovers the goal
     on (nearly) every run (per-label error drops to P[Bin(15,.2) >= 8] ≈
     0.4%); the raw noisy labeler fails most runs. *)
  let goal = pred0 [ (0, 0); (1, 2) ] in
  let runs = 50 in
  let recovered oracle_of =
    let ok = ref 0 in
    for k = 1 to runs do
      let result = Inference.run universe0 Strategy.td (oracle_of k) in
      if Inference.verified universe0 ~goal result then incr ok
    done;
    !ok
  in
  let noisy k = Oracle.noisy (Prng.create k) ~error_rate:0.2 (Oracle.honest ~goal) in
  let voted k = Oracle.majority ~votes:15 (noisy k) in
  let raw = recovered noisy and fixed = recovered voted in
  Alcotest.(check bool)
    (Printf.sprintf "majority (%d/%d) beats raw noise (%d/%d)" fixed runs raw runs)
    true
    (fixed > raw && fixed >= runs - 5)

let test_majority_deterministic_on_honest () =
  let goal = pred0 [ (0, 2) ] in
  let oracle = Oracle.majority ~votes:3 (Oracle.honest ~goal) in
  let result = Inference.run universe0 Strategy.bu oracle in
  Alcotest.(check bool) "same as honest" true
    (Inference.verified universe0 ~goal result)

(* -------------------------- hybrid strategy ----------------------- *)

let test_hybrid_equivalence () =
  List.iter
    (fun goal ->
      let result = Inference.run universe0 Strategy.hybrid (Oracle.honest ~goal) in
      Alcotest.(check bool) "hybrid equivalent" true
        (Inference.verified universe0 ~goal result))
    [ pred0 []; pred0 [ (0, 2) ]; pred0 [ (0, 0); (1, 2) ]; Omega.full omega0 ]

let test_hybrid_matches_td_before_positive () =
  let st = Jqi_core.State.create universe0 in
  Alcotest.(check (option int)) "same first pick"
    (Strategy.choose Strategy.td st)
    (Strategy.choose Strategy.hybrid st)

let test_hybrid_matches_l2s_after_positive () =
  let st = Jqi_core.State.create universe0 in
  Jqi_core.State.label st (class0 (1, 3)) Sample.Positive;
  Alcotest.(check (option int)) "same pick after positive"
    (Strategy.choose Strategy.l2s st)
    (Strategy.choose Strategy.hybrid st)

(* -------------------------- sampled universe ---------------------- *)

let test_sampled_universe_shape () =
  let prng = Prng.create 3 in
  let u = Universe.build_sampled prng ~pairs:500 r0 p0 in
  Alcotest.(check int) "total = sample size" 500 (Universe.total_tuples u);
  (* With 500 draws over a 12-tuple product every signature shows up. *)
  Alcotest.(check int) "all signatures seen" (Universe.n_classes universe0)
    (Universe.n_classes u);
  (* Sampled multiplicities roughly uniform: each class ~500/12. *)
  Array.iter
    (fun (c : Universe.cls) ->
      Alcotest.(check bool) "plausible multiplicity" true
        (c.count > 10 && c.count < 90))
    (Universe.classes u)

let test_sampled_universe_inference () =
  let prng = Prng.create 9 in
  let u = Universe.build_sampled prng ~pairs:400 r0 p0 in
  let goal = pred0 [ (0, 0); (1, 2) ] in
  let result = Inference.run u Strategy.td (Oracle.honest ~goal) in
  Alcotest.(check bool) "equivalent on the sampled universe" true
    (Inference.verified u ~goal result)

let test_sampled_universe_validation () =
  let prng = Prng.create 1 in
  Alcotest.(check bool) "zero pairs rejected" true
    (try ignore (Universe.build_sampled prng ~pairs:0 r0 p0); false
     with Invalid_argument _ -> true)

(* ----------------------------- QBE -------------------------------- *)

let test_qbe_basic () =
  (* Example 3.1's positives {(t2,t'2), (t4,t'1)} without interaction. *)
  let result =
    Qbe.infer universe0 ~positives:[ d0 (2, 2); d0 (4, 1) ] ~negatives:[]
  in
  Alcotest.check bits_testable "θ0" (pred0 [ (0, 0); (1, 2) ]) result.predicate;
  Alcotest.(check bool) "consistent" true result.consistent;
  (* θ0 selects exactly the two example classes: nothing surprising. *)
  Alcotest.(check (list int)) "no surprises" [] result.surprise_classes;
  Alcotest.(check int) "surprise count" 0 (Qbe.surprise_tuples universe0 result)

let test_qbe_surprise () =
  (* A single positive under-specifies the query: T(t2,t'1) = {(A1,B3)}
     selects four more tuples the user never asked for. *)
  let result = Qbe.infer universe0 ~positives:[ d0 (2, 1) ] ~negatives:[] in
  Alcotest.(check int) "four surprises" 4
    (List.length result.surprise_classes);
  Alcotest.(check int) "selected = examples + surprises"
    (List.length result.selected_classes)
    (1 + List.length result.surprise_classes)

let test_qbe_inconsistent () =
  let result =
    Qbe.infer universe0 ~positives:[ d0 (1, 2); d0 (1, 3) ]
      ~negatives:[ d0 (3, 1) ]
  in
  Alcotest.(check bool) "inconsistent detected" false result.consistent

let test_qbe_matches_interactive () =
  (* QBE over the full honest labeling equals the interactive result. *)
  let goal = pred0 [ (1, 2) ] in
  let positives =
    List.filter
      (fun ij -> Jqi_core.Tsig.selects goal (Universe.signature universe0 (class0 ij)))
      [ (1, 1); (1, 2); (1, 3); (2, 1); (2, 2); (2, 3);
        (3, 1); (3, 2); (3, 3); (4, 1); (4, 2); (4, 3) ]
    |> List.map d0
  in
  let qbe = Qbe.infer universe0 ~positives ~negatives:[] in
  let interactive = Inference.run universe0 Strategy.td (Oracle.honest ~goal) in
  Alcotest.(check bool) "same instance-equivalent predicate" true
    (Universe.equivalent universe0 qbe.predicate interactive.predicate)

let suite =
  [
    Alcotest.test_case "majority validation" `Quick test_majority_validation;
    Alcotest.test_case "majority fixes noise" `Quick test_majority_fixes_noise;
    Alcotest.test_case "majority on honest" `Quick test_majority_deterministic_on_honest;
    Alcotest.test_case "hybrid equivalence" `Quick test_hybrid_equivalence;
    Alcotest.test_case "hybrid = TD before positive" `Quick test_hybrid_matches_td_before_positive;
    Alcotest.test_case "hybrid = L2S after positive" `Quick test_hybrid_matches_l2s_after_positive;
    Alcotest.test_case "sampled universe shape" `Quick test_sampled_universe_shape;
    Alcotest.test_case "sampled universe inference" `Quick test_sampled_universe_inference;
    Alcotest.test_case "sampled universe validation" `Quick test_sampled_universe_validation;
    Alcotest.test_case "qbe basic" `Quick test_qbe_basic;
    Alcotest.test_case "qbe surprise reporting" `Quick test_qbe_surprise;
    Alcotest.test_case "qbe inconsistency" `Quick test_qbe_inconsistent;
    Alcotest.test_case "qbe matches interactive" `Quick test_qbe_matches_interactive;
  ]
