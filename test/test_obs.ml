(* The observability layer (jqi.obs): counter registry, enabled/disabled
   semantics, span nesting, Chrome-trace export, Report snapshots, and the
   invariant that instrumentation never changes inference results. *)

module Obs = Jqi_obs.Obs
module Json = Jqi_util.Json
module Universe = Jqi_core.Universe
module Strategy = Jqi_core.Strategy
module Oracle = Jqi_core.Oracle
module Inference = Jqi_core.Inference

(* Every test starts from a clean, enabled registry and leaves the layer
   disabled for whoever runs next. *)
let with_obs ?(enabled = true) f =
  Obs.reset ();
  Obs.set_enabled enabled;
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.reset ())
    f

let test_counter_registry () =
  with_obs @@ fun () ->
  let a = Obs.Counter.make "test.reg.a" in
  let a' = Obs.Counter.make "test.reg.a" in
  Obs.Counter.incr a;
  Obs.Counter.add a' 2;
  (* make is idempotent: both handles hit the same cell. *)
  Alcotest.(check int) "shared cell" 3 (Obs.Counter.value a);
  Alcotest.(check int) "find by name" 3 (Obs.Counter.find "test.reg.a");
  Alcotest.(check int) "unknown name is 0" 0 (Obs.Counter.find "test.reg.nope");
  Alcotest.(check string) "name" "test.reg.a" (Obs.Counter.name a)

let test_counter_disabled_noop () =
  with_obs ~enabled:false @@ fun () ->
  let c = Obs.Counter.make "test.disabled.c" in
  Obs.Counter.incr c;
  Obs.Counter.add c 41;
  Alcotest.(check int) "disabled increments dropped" 0 (Obs.Counter.value c);
  Obs.set_enabled true;
  Obs.Counter.incr c;
  Alcotest.(check int) "enabled increments land" 1 (Obs.Counter.value c)

let test_reset_zeroes () =
  with_obs @@ fun () ->
  let c = Obs.Counter.make "test.reset.c" in
  Obs.Counter.add c 7;
  ignore (Obs.span "test.reset.span" (fun () -> ()));
  Obs.reset ();
  Obs.set_enabled true;
  Alcotest.(check int) "counter zeroed" 0 (Obs.Counter.value c);
  let report = Obs.Report.snapshot () in
  Alcotest.(check int) "spans dropped" 0 (List.length report.Obs.Report.spans);
  (* The counter stays registered after reset. *)
  Alcotest.(check bool) "still registered" true
    (List.mem_assoc "test.reset.c" report.Obs.Report.counters)

let test_histogram () =
  with_obs @@ fun () ->
  let h = Obs.Histogram.make "test.h" in
  List.iter (Obs.Histogram.observe h) [ 1.; 2.; 3.; 4. ];
  Alcotest.(check int) "count" 4 (Obs.Histogram.count h);
  Alcotest.(check (float 1e-9)) "sum" 10. (Obs.Histogram.sum h);
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Obs.Histogram.mean h);
  (* Bucketed quantile: accurate to a factor of 2. *)
  let q = Obs.Histogram.quantile h 0.5 in
  Alcotest.(check bool) "median within 2x" true (q >= 2. && q <= 8.)

let test_span_disabled_is_identity () =
  with_obs ~enabled:false @@ fun () ->
  let calls = ref 0 in
  let v =
    Obs.span "test.off" (fun () ->
        incr calls;
        42)
  in
  Alcotest.(check int) "returns f ()" 42 v;
  Alcotest.(check int) "f ran once" 1 !calls;
  Obs.set_enabled true;
  Alcotest.(check int) "nothing recorded" 0
    (List.length (Obs.Report.snapshot ()).Obs.Report.spans)

let test_span_nesting () =
  with_obs @@ fun () ->
  Obs.span "outer" (fun () ->
      Obs.span "inner" (fun () -> ());
      Obs.span "inner" (fun () -> ()));
  let spans = (Obs.Report.snapshot ()).Obs.Report.spans in
  let find name =
    List.find (fun s -> s.Obs.Report.s_name = name) spans
  in
  let outer = find "outer" and inner = find "inner" in
  Alcotest.(check int) "outer depth" 0 outer.Obs.Report.s_depth;
  Alcotest.(check int) "inner depth" 1 inner.Obs.Report.s_depth;
  Alcotest.(check string) "outer path" "outer" outer.Obs.Report.s_path;
  Alcotest.(check string) "inner path" "outer/inner" inner.Obs.Report.s_path;
  Alcotest.(check int) "outer calls" 1 outer.Obs.Report.s_calls;
  Alcotest.(check int) "inner calls aggregated" 2 inner.Obs.Report.s_calls;
  Alcotest.(check bool) "parent covers children" true
    (outer.Obs.Report.s_total >= inner.Obs.Report.s_total);
  (* Pre-order: the parent precedes its children. *)
  match spans with
  | first :: _ -> Alcotest.(check string) "parent first" "outer" first.Obs.Report.s_name
  | [] -> Alcotest.fail "no spans"

let test_span_exception_safe () =
  with_obs @@ fun () ->
  (try Obs.span "boom" (fun () -> failwith "expected") with Failure _ -> ());
  Obs.span "after" (fun () -> ());
  let spans = (Obs.Report.snapshot ()).Obs.Report.spans in
  let depths = List.map (fun s -> (s.Obs.Report.s_name, s.Obs.Report.s_depth)) spans in
  (* The raising span closed: "after" is a root, not a child of "boom". *)
  Alcotest.(check bool) "boom recorded at depth 0" true
    (List.mem ("boom", 0) depths);
  Alcotest.(check bool) "after recorded at depth 0" true
    (List.mem ("after", 0) depths)

let test_trace_json_shape () =
  with_obs @@ fun () ->
  Obs.span ~attrs:[ ("k", "2") ] "a" (fun () -> Obs.span "b" (fun () -> ()));
  match Obs.trace_json () with
  | Json.Obj fields ->
      Alcotest.(check bool) "displayTimeUnit" true
        (List.mem_assoc "displayTimeUnit" fields);
      let events =
        match List.assoc "traceEvents" fields with
        | Json.List evs -> evs
        | _ -> Alcotest.fail "traceEvents is not a list"
      in
      Alcotest.(check int) "one event per span" 2 (List.length events);
      List.iter
        (fun ev ->
          match ev with
          | Json.Obj f ->
              let str k = match List.assoc k f with Json.Str s -> s | _ -> "" in
              let num k =
                match List.assoc k f with
                | Json.Num x -> x
                | _ -> Alcotest.failf "%s not a number" k
              in
              Alcotest.(check string) "complete event" "X" (str "ph");
              Alcotest.(check bool) "ts µs >= 0" true (num "ts" >= 0.);
              Alcotest.(check bool) "dur µs >= 0" true (num "dur" >= 0.);
              Alcotest.(check bool) "pid" true (List.mem_assoc "pid" f);
              Alcotest.(check bool) "tid" true (List.mem_assoc "tid" f);
              Alcotest.(check bool) "named" true (str "name" <> "")
          | _ -> Alcotest.fail "event is not an object")
        events;
      (* The attrs ride along under "args". *)
      let has_args =
        List.exists
          (function
            | Json.Obj f -> (
                match List.assoc_opt "args" f with
                | Some (Json.Obj [ ("k", Json.Str "2") ]) -> true
                | _ -> false)
            | _ -> false)
          events
      in
      Alcotest.(check bool) "attrs under args" true has_args
  | _ -> Alcotest.fail "trace is not an object"

let test_save_trace_parses () =
  with_obs @@ fun () ->
  Obs.span "io" (fun () -> ());
  let path = Filename.temp_file "jqi_trace" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Obs.save_trace path;
      match Json.load_file path with
      | Json.Obj fields ->
          Alcotest.(check bool) "parses with traceEvents" true
            (List.mem_assoc "traceEvents" fields)
      | _ -> Alcotest.fail "saved trace is not an object")

let test_report_counter_and_json () =
  with_obs @@ fun () ->
  Obs.Counter.add (Obs.Counter.make "test.rep.c") 5;
  let report = Obs.Report.snapshot () in
  Alcotest.(check int) "counter accessor" 5
    (Obs.Report.counter report "test.rep.c");
  Alcotest.(check int) "missing counter is 0" 0
    (Obs.Report.counter report "test.rep.absent");
  (match Obs.Report.to_json report with
  | Json.Obj fields ->
      Alcotest.(check bool) "counters field" true (List.mem_assoc "counters" fields)
  | _ -> Alcotest.fail "report json is not an object");
  let rendered = Obs.Report.render report in
  Alcotest.(check bool) "render mentions the counter" true
    (let needle = "test.rep.c" in
     let hl = String.length rendered and nl = String.length needle in
     let rec go i = i + nl <= hl && (String.sub rendered i nl = needle || go (i + 1)) in
     go 0)

(* Instrumentation must be observation-only: the same inference, run with
   obs off and on, yields identical question sequences — and the question
   counter agrees with the run's own interaction count. *)
let test_inference_unchanged_by_obs () =
  let universe = Fixtures.universe0 in
  let goal = Fixtures.pred0 [ (0, 2) ] in
  let run () = Inference.run universe Strategy.l2s (Oracle.honest ~goal) in
  Obs.set_enabled false;
  Obs.reset ();
  let off = run () in
  with_obs @@ fun () ->
  let on = run () in
  Alcotest.(check (list (pair int Fixtures.label_testable)))
    "identical question/answer sequence" off.Inference.steps on.Inference.steps;
  Alcotest.(check int) "questions counter = interactions" on.Inference.n_interactions
    (Obs.Counter.find "oracle.questions")

let suite =
  [
    Alcotest.test_case "counter registry" `Quick test_counter_registry;
    Alcotest.test_case "disabled counters are no-ops" `Quick test_counter_disabled_noop;
    Alcotest.test_case "reset zeroes, keeps registrations" `Quick test_reset_zeroes;
    Alcotest.test_case "histogram" `Quick test_histogram;
    Alcotest.test_case "disabled span is identity" `Quick test_span_disabled_is_identity;
    Alcotest.test_case "span nesting" `Quick test_span_nesting;
    Alcotest.test_case "span exception safety" `Quick test_span_exception_safe;
    Alcotest.test_case "chrome trace shape" `Quick test_trace_json_shape;
    Alcotest.test_case "save_trace parses back" `Quick test_save_trace_parses;
    Alcotest.test_case "report counter/json/render" `Quick test_report_counter_and_json;
    Alcotest.test_case "inference unchanged by obs" `Quick test_inference_unchanged_by_obs;
  ]
