(* The sans-IO engine (Engine) against its two references: the
   hand-written Algorithm 1 loop below and Inference.run (now a driver
   over the engine, but pinned here so a regression in either shows up as
   a three-way disagreement).

   The differential property: for random instances, random goals and
   every strategy, driving the engine by hand with honest labels yields
   exactly the question sequence, predicate, interaction count and halt
   flag of Inference.run — plus units for the budget, value semantics and
   the forced-pending resume path. *)

open Fixtures
module Bits = Jqi_util.Bits
module Engine = Jqi_core.Engine
module State = Jqi_core.State
module Sample = Jqi_core.Sample
module Strategy = Jqi_core.Strategy
module Oracle = Jqi_core.Oracle
module Inference = Jqi_core.Inference

let honest_label goal signature =
  if Bits.subset goal signature then Sample.Positive else Sample.Negative

(* Drive an engine to completion with honest labels. *)
let drive ?max_interactions ?state ?pending universe strategy ~goal =
  let rec go engine =
    match Engine.pending engine with
    | Some q -> go (Engine.answer engine (honest_label goal q.Engine.signature))
    | None -> engine
  in
  go (Engine.create ?max_interactions ?state ?pending universe strategy)

(* The executable transcription of Algorithm 1 with the budget checked
   before the strategy — the semantics Inference.run always had. *)
let reference_run ?max_interactions universe strategy ~goal =
  let st = State.create universe in
  let steps = ref [] in
  let rec loop n =
    let in_budget =
      match max_interactions with Some m -> n < m | None -> true
    in
    if not in_budget then (n, false)
    else
      match Strategy.choose strategy st with
      | None -> (n, true)
      | Some c ->
          let label =
            honest_label goal (Jqi_core.Universe.signature universe c)
          in
          steps := (c, label) :: !steps;
          State.label st c label;
          loop (n + 1)
  in
  let n, halted = loop 0 in
  (List.rev !steps, State.inferred st, n, halted)

let step_testable = Alcotest.(list (pair int label_testable))

let check_agreement ?max_interactions name universe strategy_name ~goal =
  (* Stateful strategies (rnd, igs) carry a PRNG, so each of the three
     runs needs its own instance built from the same seed. *)
  let fresh () =
    match Strategy.of_name ~seed:7 strategy_name with
    | Some s -> s
    | None -> Alcotest.fail ("unknown strategy " ^ strategy_name)
  in
  let outcome =
    Engine.result (drive ?max_interactions universe (fresh ()) ~goal)
  in
  let run =
    match max_interactions with
    | Some m ->
        Inference.run ~max_interactions:m universe (fresh ())
          (Oracle.honest ~goal)
    | None -> Inference.run universe (fresh ()) (Oracle.honest ~goal)
  in
  let ref_steps, ref_pred, ref_n, ref_halted =
    reference_run ?max_interactions universe (fresh ()) ~goal
  in
  Alcotest.check step_testable (name ^ ": engine = run steps")
    run.Inference.steps outcome.Engine.steps;
  Alcotest.check step_testable (name ^ ": engine = reference steps") ref_steps
    outcome.Engine.steps;
  Alcotest.check bits_testable (name ^ ": engine = run predicate")
    run.Inference.predicate outcome.Engine.predicate;
  Alcotest.check bits_testable (name ^ ": engine = reference predicate")
    ref_pred outcome.Engine.predicate;
  Alcotest.(check int)
    (name ^ ": interactions") run.Inference.n_interactions
    outcome.Engine.n_interactions;
  Alcotest.(check int) (name ^ ": reference interactions") ref_n
    outcome.Engine.n_interactions;
  Alcotest.(check bool) (name ^ ": halted") run.Inference.halted
    outcome.Engine.halted;
  Alcotest.(check bool) (name ^ ": reference halted") ref_halted
    outcome.Engine.halted

let all_strategy_names = [ "bu"; "td"; "l1s"; "l2s"; "rnd"; "igs"; "td+l2s" ]

let test_d0_differential () =
  List.iter
    (fun name ->
      check_agreement ("D0 " ^ name) universe0 name ~goal:(pred0 [ (0, 2) ]))
    all_strategy_names

let test_d0_differential_budgets () =
  List.iter
    (fun budget ->
      List.iter
        (fun name ->
          check_agreement ~max_interactions:budget
            (Printf.sprintf "D0 %s budget %d" name budget)
            universe0 name ~goal:(pred0 [ (0, 0); (1, 2) ]))
        all_strategy_names)
    [ 0; 1; 2; 100 ]

(* ----------------------- random instances ------------------------- *)

let gen_instance =
  QCheck.Gen.(
    let cell = map (fun i -> Jqi_relational.Value.Int i) (int_bound 2) in
    let* ra = int_range 1 3 and* pa = int_range 1 3 in
    let row arity = map Jqi_relational.Tuple.of_list (list_repeat arity cell) in
    let* rrows = list_size (int_range 1 4) (row ra)
    and* prows = list_size (int_range 1 4) (row pa)
    and* goal_ix = int_bound 1000
    and* strategy_ix = int_bound (List.length all_strategy_names - 1)
    and* budget = oneof [ return None; map Option.some (int_bound 4) ] in
    return (ra, pa, rrows, prows, goal_ix, strategy_ix, budget))

let build_instance (ra, pa, rrows, prows) =
  let mk name prefix arity rows =
    Jqi_relational.Relation.of_list ~name
      ~schema:
        (Jqi_relational.Schema.of_names ~ty:Jqi_relational.Value.TInt
           (List.init arity (fun i -> Printf.sprintf "%s%d" prefix (i + 1))))
      rows
  in
  Jqi_core.Universe.build (mk "R" "A" ra rrows) (mk "P" "B" pa prows)

let arb_instance =
  QCheck.make gen_instance
    ~print:(fun (ra, pa, rrows, prows, goal_ix, strategy_ix, budget) ->
      Printf.sprintf "R:%dx%d P:%dx%d goal#%d %s budget:%s [%s | %s]"
        (List.length rrows) ra (List.length prows) pa goal_ix
        (List.nth all_strategy_names strategy_ix)
        (match budget with Some b -> string_of_int b | None -> "none")
        (String.concat ";"
           (List.map Jqi_relational.Tuple.to_string rrows))
        (String.concat ";"
           (List.map Jqi_relational.Tuple.to_string prows)))

let qcheck_engine_differential =
  QCheck.Test.make
    ~name:"engine = Inference.run = Algorithm 1 on random instances"
    ~count:100 arb_instance
    (fun (ra, pa, rrows, prows, goal_ix, strategy_ix, budget) ->
      let universe = build_instance (ra, pa, rrows, prows) in
      let omega = Jqi_core.Universe.omega universe in
      let goals =
        Jqi_core.Omega.empty omega :: Jqi_core.Omega.full omega
        :: Jqi_core.Universe.signatures universe
      in
      let goal = List.nth goals (goal_ix mod List.length goals) in
      let name = List.nth all_strategy_names strategy_ix in
      check_agreement
        ?max_interactions:budget
        (Printf.sprintf "random %s" name)
        universe name ~goal;
      true)

(* --------------------------- unit tests --------------------------- *)

let test_value_semantics () =
  (* Answering never mutates the answered engine: both labels can be
     explored from the same point, and the original still presents the
     same question afterwards. *)
  let e0 = Engine.create universe0 Strategy.bu in
  let q0 =
    match Engine.pending e0 with
    | Some q -> q
    | None -> Alcotest.fail "fresh engine has no question"
  in
  let pos = Engine.answer e0 Sample.Positive in
  let neg = Engine.answer e0 Sample.Negative in
  (match Engine.pending e0 with
  | Some q ->
      Alcotest.(check int) "original question unchanged" q0.Engine.class_id
        q.Engine.class_id
  | None -> Alcotest.fail "original engine lost its question");
  Alcotest.(check int) "original unasked" 0 (Engine.n_asked e0);
  Alcotest.(check int) "successors asked once" 1 (Engine.n_asked pos);
  Alcotest.(check int) "successors asked once" 1 (Engine.n_asked neg);
  let r_pos = Engine.result pos and r_neg = Engine.result neg in
  Alcotest.(check bool) "branches diverge" false
    (Bits.equal r_pos.Engine.predicate r_neg.Engine.predicate
    && State.informative_classes r_pos.Engine.state
       = State.informative_classes r_neg.Engine.state)

let test_budget_zero () =
  let e = Engine.create ~max_interactions:0 universe0 Strategy.bu in
  Alcotest.(check bool) "no question" true (Engine.pending e = None);
  Alcotest.(check bool) "finished" true (Engine.finished e);
  Alcotest.(check bool) "not halted (budget, not Γ)" false (Engine.halted e);
  Alcotest.(check bool) "answer raises" true
    (try
       ignore (Engine.answer e Sample.Positive);
       false
     with Invalid_argument _ -> true)

let test_budget_excludes_resumed_interactions () =
  (* A resumed state's prior interactions count in the outcome's
     n_interactions but not against the new engine's budget. *)
  let st = State.create universe0 in
  State.label st (class0 (2, 2)) Sample.Positive;
  State.label st (class0 (1, 3)) Sample.Negative;
  let e = Engine.create ~max_interactions:1 ~state:st universe0 Strategy.bu in
  Alcotest.(check bool) "one question allowed" true (Engine.pending e <> None);
  let e =
    match Engine.pending e with
    | Some q ->
        Engine.answer e
          (honest_label (pred0 [ (0, 0); (1, 2) ]) q.Engine.signature)
    | None -> Alcotest.fail "expected a question"
  in
  Alcotest.(check bool) "budget now exhausted" true (Engine.finished e);
  let outcome = Engine.result e in
  Alcotest.(check int) "prior interactions counted" 3
    outcome.Engine.n_interactions;
  Alcotest.(check int) "but only one asked here" 1 (Engine.n_asked e)

let test_resume_does_not_mutate_state () =
  let st = State.create universe0 in
  State.label st (class0 (2, 2)) Sample.Positive;
  let before = State.informative_classes st in
  let e = Engine.create ~state:st universe0 Strategy.bu in
  (match Engine.pending e with
  | Some q -> ignore (Engine.answer e (honest_label (pred0 []) q.Engine.signature))
  | None -> ());
  Alcotest.(check (list int)) "caller's state untouched" before
    (State.informative_classes st)

let test_forced_pending () =
  (* A forced pending class is re-presented verbatim when informative... *)
  let cls = class0 (1, 3) in
  let e = Engine.create ~pending:cls universe0 Strategy.bu in
  (match Engine.pending e with
  | Some q -> Alcotest.(check int) "forced class presented" cls q.Engine.class_id
  | None -> Alcotest.fail "expected the forced question");
  (* ... and ignored when it is not (here: already certain after ∅⁺ made
     everything certain-negative except supersets). *)
  let st = State.create universe0 in
  State.label st (class0 (3, 1)) Sample.Positive;
  let e2 = Engine.create ~state:st ~pending:(class0 (1, 3)) universe0 Strategy.bu in
  Alcotest.(check bool) "stale pending dropped" true (Engine.pending e2 = None)

let test_outcome_state_is_a_copy () =
  let e0 = Engine.create universe0 Strategy.bu in
  let e =
    match Engine.pending e0 with
    | Some q ->
        Engine.answer e0 (honest_label (pred0 [ (0, 2) ]) q.Engine.signature)
    | None -> Alcotest.fail "expected a first question"
  in
  let o1 = Engine.result e in
  (match Engine.pending e with
  | Some q -> State.label o1.Engine.state q.Engine.class_id Sample.Positive
  | None -> Alcotest.fail "expected a second question");
  Alcotest.(check int) "mutated snapshot" 2 (State.n_interactions o1.Engine.state);
  let o2 = Engine.result e in
  Alcotest.(check int) "mutating one outcome does not leak into the next" 1
    (State.n_interactions o2.Engine.state)

let suite =
  [
    Alcotest.test_case "D0 differential, all strategies" `Quick
      test_d0_differential;
    Alcotest.test_case "D0 differential under budgets" `Quick
      test_d0_differential_budgets;
    QCheck_alcotest.to_alcotest qcheck_engine_differential;
    Alcotest.test_case "engines are values" `Quick test_value_semantics;
    Alcotest.test_case "budget 0 asks nothing" `Quick test_budget_zero;
    Alcotest.test_case "budget ignores resumed interactions" `Quick
      test_budget_excludes_resumed_interactions;
    Alcotest.test_case "resume copies the state" `Quick
      test_resume_does_not_mutate_state;
    Alcotest.test_case "forced pending" `Quick test_forced_pending;
    Alcotest.test_case "outcome state is a copy" `Quick
      test_outcome_state_is_a_copy;
  ]
