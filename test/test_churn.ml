(* Churn pipeline tests: the Delta abstraction through every layer.

   The centerpiece is the differential oracle for incremental universe
   maintenance: [Universe.apply_delta] must be byte-identical — classes,
   counts and representatives — to a from-scratch [build]/[build_kary]
   over the post-delta relations, on random interleaved insert/delete
   edit scripts, on both Mem and Paged backends.  Around it sit unit
   tests for the delta plumbing (resolution, Mem/Paged application,
   dictionary interning, incremental fingerprints) and the storage
   primitives that make deletion real (heap tombstones + frontier
   reclamation, B-tree key removal, relstore churn + reopen). *)

module Bits = Jqi_util.Bits
module Value = Jqi_relational.Value
module Schema = Jqi_relational.Schema
module Tuple = Jqi_relational.Tuple
module Relation = Jqi_relational.Relation
module Delta = Jqi_relational.Delta
module Dict = Jqi_relational.Dict
module Universe = Jqi_core.Universe
module Heap = Jqi_storage.Heap
module Btree = Jqi_storage.Btree
module Relstore = Jqi_storage.Relstore
module Buffer_pool = Jqi_storage.Buffer_pool

let tmp_path suffix =
  let path = Filename.temp_file "jqi-churn" suffix in
  at_exit (fun () -> try Sys.remove path with Sys_error _ -> ());
  path

let ints_of tup =
  List.map
    (function
      | Value.Int i -> i
      | Value.Null | Value.Bool _ | Value.Float _ | Value.Str _ ->
          invalid_arg "ints_of: non-int cell")
    (Tuple.to_list tup)

let relation_of name prefix rows =
  let arity = Tuple.arity (List.hd rows) in
  Relation.of_list ~name
    ~schema:
      (Schema.of_names ~ty:Value.TInt
         (List.init arity (fun i -> Printf.sprintf "%s%d" prefix i)))
    rows

(* Structural agreement over any arity k (generalizes the binary helper
   in test_universe_quotient.ml). *)
let universes_agree u1 u2 =
  Int.equal (Universe.n_classes u1) (Universe.n_classes u2)
  && Int.equal (Universe.total_tuples u1) (Universe.total_tuples u2)
  &&
  let rec go i =
    i >= Universe.n_classes u1
    || Bits.equal (Universe.signature u1 i) (Universe.signature u2 i)
       && Int.equal (Universe.count u1 i) (Universe.count u2 i)
       && (let rep1 = (Universe.cls u1 i).Universe.rep
           and rep2 = (Universe.cls u2 i).Universe.rep in
           Int.equal (Array.length rep1) (Array.length rep2)
           && Array.for_all2 Int.equal rep1 rep2)
       && go (i + 1)
  in
  go 0

let check_agree label u1 u2 =
  Alcotest.(check bool) label true (universes_agree u1 u2)

(* Reference delta semantics on a row list: each remove drops the
   earliest remaining [Tuple.equal] occurrence; adds append. *)
let apply_ref rows (d : Delta.t) =
  let rows =
    Array.fold_left
      (fun rows tup ->
        let rec drop = function
          | [] -> invalid_arg "apply_ref: unmatched remove"
          | r :: rest ->
              if Tuple.equal r tup then rest else r :: drop rest
        in
        drop rows)
      rows d.Delta.removes
  in
  rows @ Array.to_list d.Delta.adds

(* ------------------------- delta plumbing ------------------------- *)

let test_delta_basics () =
  Alcotest.(check bool) "empty" true (Delta.is_empty Delta.empty);
  let d = Delta.of_lists ~adds:[ Tuple.ints [ 1 ] ] ~removes:[] in
  Alcotest.(check bool) "not empty" false (Delta.is_empty d);
  Alcotest.(check bool) "inserts only" true (Delta.inserts_only d);
  Alcotest.(check int) "shift" 1 (Delta.cardinality_shift d);
  Delta.check_arity 1 d;
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Delta: insert row arity 1, relation arity 2")
    (fun () -> Delta.check_arity 2 d)

let test_resolve_removes () =
  let rows = [ [ 1; 1 ]; [ 2; 2 ]; [ 1; 1 ]; [ 3; 3 ]; [ 1; 1 ] ] in
  let r = relation_of "r" "a" (List.map Tuple.ints rows) in
  (* two removes of the duplicate row claim its two earliest occurrences *)
  let d =
    Delta.of_lists ~adds:[]
      ~removes:[ Tuple.ints [ 1; 1 ]; Tuple.ints [ 1; 1 ] ]
  in
  Alcotest.(check (array int)) "earliest occurrences" [| 0; 2 |]
    (Relation.resolve_removes r d);
  let bad = Delta.of_lists ~adds:[] ~removes:[ Tuple.ints [ 9; 9 ] ] in
  Alcotest.(check bool) "unmatched raises" true
    (match Relation.resolve_removes r bad with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_apply_delta_mem () =
  let rows = List.map Tuple.ints [ [ 1 ]; [ 2 ]; [ 3 ]; [ 2 ] ] in
  let r = relation_of "r" "a" rows in
  let d =
    Delta.of_lists
      ~adds:[ Tuple.ints [ 7 ]; Tuple.ints [ 8 ] ]
      ~removes:[ Tuple.ints [ 2 ] ]
  in
  let r' = Relation.apply_delta r d in
  Alcotest.(check (list (list int)))
    "survivors in order, adds appended"
    [ [ 1 ]; [ 3 ]; [ 2 ]; [ 7 ]; [ 8 ] ]
    (List.map ints_of (Relation.to_list r'));
  (* the input relation is untouched (Mem is persistent) *)
  Alcotest.(check int) "input untouched" 4 (Relation.cardinality r)

let test_intern_delta () =
  let dict = Dict.create () in
  let c1 = Dict.code dict (Value.Int 1) in
  let d =
    Delta.of_lists
      ~adds:[ Tuple.ints [ 1; 5 ] ]
      ~removes:[ Tuple.ints [ 1; 1 ] ]
  in
  let vecs = Dict.intern_delta dict d in
  Alcotest.(check int) "one add vector" 1 (Array.length vecs);
  Alcotest.(check int) "old value keeps its code" c1 vecs.(0).(0);
  Alcotest.(check bool) "new value mints a fresh code" true
    (vecs.(0).(1) <> c1 && vecs.(0).(1) >= 0);
  (* removes never shrink the code space *)
  Alcotest.(check int) "codes never recycled" 2 (Dict.size dict)

let test_fingerprint_extension () =
  let rows = List.map Tuple.ints [ [ 1; 2 ]; [ 3; 4 ] ] in
  let adds = [| Tuple.ints [ 5; 6 ]; Tuple.ints [ 7; 8 ] |] in
  let r = relation_of "r" "a" rows in
  let grown =
    Relation.apply_delta r (Delta.v ~adds ~removes:[||])
  in
  let extended =
    Relation.Fp.render (Relation.Fp.feed_rows (Relation.Fp.of_relation r) adds)
  in
  Alcotest.(check string) "acc extension = from-scratch fingerprint"
    (Relation.fingerprint grown) extended;
  Alcotest.(check string) "of_relation = fingerprint"
    (Relation.fingerprint r)
    (Relation.Fp.render (Relation.Fp.of_relation r))

(* --------------------------- heap churn --------------------------- *)

let test_heap_delete () =
  let path = tmp_path ".jqh" in
  let h = Heap.create_file ~page_size:512 ~pool_frames:4 path in
  let rids =
    Array.init 40 (fun i -> Heap.append h (Printf.sprintf "record-%03d" i))
  in
  Heap.delete h rids.(5);
  Heap.delete h rids.(17);
  Alcotest.(check int) "live count" 38 (Heap.record_count h);
  Alcotest.(check bool) "get on deleted raises" true
    (match Heap.get h rids.(5) with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "double delete raises" true
    (match Heap.delete h rids.(5) with
    | () -> false
    | exception Invalid_argument _ -> true);
  let seen = ref [] in
  Heap.iter h (fun _ record -> seen := record :: !seen);
  Alcotest.(check int) "iter skips tombstones" 38 (List.length !seen);
  Alcotest.(check bool) "deleted not scanned" true
    (not (List.mem "record-005" !seen));
  (* append after delete still lands at the tail, after every survivor *)
  let last_rid = Heap.append h "record-new" in
  Alcotest.(check string) "tail append readable" "record-new"
    (Heap.get h last_rid);
  Heap.sync h;
  Heap.close h;
  (* reopen rebuilds the live count from the directory alone *)
  let h2 = Heap.open_file ~pool_frames:4 path in
  Alcotest.(check int) "reopened live count" 39 (Heap.record_count h2);
  let order = ref [] in
  Heap.iter h2 (fun _ r -> order := r :: !order);
  Alcotest.(check (option string)) "append order preserved"
    (Some "record-new")
    (match !order with last :: _ -> Some last | [] -> None);
  Heap.close h2

let test_heap_frontier_reclaim () =
  let path = tmp_path ".jqh" in
  let h = Heap.create_file ~page_size:512 ~pool_frames:4 path in
  let a = Heap.append h (String.make 50 'a') in
  let b = Heap.append h (String.make 50 'b') in
  let c = Heap.append h (String.make 50 'c') in
  let free0 = Heap.free_bytes h in
  (* tombstone the middle record: length is parked, bytes not yet free *)
  Heap.delete h b;
  Alcotest.(check int) "mid tombstone frees nothing" free0 (Heap.free_bytes h);
  (* deleting the frontier cascades over the trailing tombstone: both
     records' bytes and slots come back *)
  Heap.delete h c;
  let freed = Heap.free_bytes h - free0 in
  Alcotest.(check int) "cascade reclaims both records" (2 * (50 + 4)) freed;
  Alcotest.(check string) "survivor intact" (String.make 50 'a') (Heap.get h a);
  Alcotest.(check int) "one live record" 1 (Heap.record_count h);
  Heap.close h

(* --------------------------- btree churn -------------------------- *)

let test_btree_remove () =
  let path = tmp_path ".jqb" in
  let bt = Btree.create_file ~page_size:512 ~pool_frames:8 path in
  for i = 0 to 199 do
    Btree.insert bt (Int64.of_int (i mod 10)) (Int64.of_int i)
  done;
  Alcotest.(check int) "count" 200 (Btree.count bt);
  Alcotest.(check bool) "remove hits" true (Btree.remove bt 3L 13L);
  Alcotest.(check bool) "second remove of same entry misses" false
    (Btree.remove bt 3L 13L);
  Alcotest.(check bool) "missing key misses" false (Btree.remove bt 42L 0L);
  Alcotest.(check int) "count decremented" 199 (Btree.count bt);
  let vals = Btree.find_all bt 3L in
  Alcotest.(check int) "one value gone" 19 (List.length vals);
  Alcotest.(check bool) "13 gone, order kept" true
    (not (List.mem 13L vals) && List.mem 3L vals && List.mem 193L vals);
  (* drain a whole key; lookups and scans tolerate the underflow *)
  List.iter (fun v -> ignore (Btree.remove bt 7L v)) (Btree.find_all bt 7L);
  Alcotest.(check (list int64)) "drained key" [] (Btree.find_all bt 7L);
  let scanned = ref 0 in
  Btree.iter bt (fun _ _ -> incr scanned);
  Alcotest.(check int) "scan agrees with count" (Btree.count bt) !scanned;
  Btree.close bt

(* -------------------------- relstore churn ------------------------ *)

let test_relstore_churn_reopen () =
  let rows = List.map Tuple.ints [ [ 1; 2 ]; [ 3; 4 ]; [ 1; 2 ]; [ 5; 6 ] ] in
  let mem = relation_of "r" "a" rows in
  let store =
    Relstore.of_relation ~page_size:512 ~pool_frames:4 ~dest:(tmp_path ".jqh")
      mem
  in
  Relstore.apply_delta store
    ~adds:[| Tuple.ints [ 7; 8 ] |]
    ~removed:[| 0 |];
  let expect = [ [ 3; 4 ]; [ 1; 2 ]; [ 5; 6 ]; [ 7; 8 ] ] in
  let rows_of rel = List.map ints_of (Relation.to_list rel) in
  Alcotest.(check (list (list int))) "in-place churn" expect
    (rows_of (Relstore.relation store));
  Alcotest.(check int) "row count" 4 (Relstore.row_count store);
  let path = Relstore.path store in
  Relstore.close store;
  (* the reopen scan must rebuild exactly the post-churn row sequence *)
  let store2 = Relstore.open_file ~pool_frames:4 path in
  Alcotest.(check (list (list int))) "reopen preserves order" expect
    (rows_of (Relstore.relation store2));
  Relstore.close store2

let test_relation_apply_delta_paged () =
  let rows = List.map Tuple.ints [ [ 1 ]; [ 2 ]; [ 3 ] ] in
  let store =
    Relstore.of_relation ~page_size:512 ~pool_frames:4 ~dest:(tmp_path ".jqh")
      (relation_of "r" "a" rows)
  in
  let rel = Relstore.relation store in
  let d =
    Delta.of_lists ~adds:[ Tuple.ints [ 9 ] ] ~removes:[ Tuple.ints [ 2 ] ]
  in
  let rel' = Relation.apply_delta rel d in
  Alcotest.(check string) "stays paged" "paged" (Relation.backend_name rel');
  Alcotest.(check (list (list int))) "paged churn"
    [ [ 1 ]; [ 3 ]; [ 9 ] ]
    (List.map ints_of (Relation.to_list rel'));
  Relstore.close store

(* --------------------- universe delta, deterministic -------------- *)

let build_of rows_r rows_p =
  Universe.build (relation_of "r" "a" rows_r) (relation_of "p" "b" rows_p)

let test_universe_insert_only () =
  let rows_r = List.map Tuple.ints [ [ 1; 2 ]; [ 2; 1 ]; [ 1; 2 ] ] in
  let rows_p = List.map Tuple.ints [ [ 1 ]; [ 2 ] ] in
  let u = build_of rows_r rows_p in
  let d = Delta.of_lists ~adds:[ Tuple.ints [ 2; 2 ]; Tuple.ints [ 1; 2 ] ] ~removes:[] in
  let u' = Universe.apply_delta u [ (0, d) ] in
  let rebuilt =
    build_of (apply_ref rows_r d) rows_p
  in
  check_agree "insert-only = rebuild" rebuilt u';
  Alcotest.(check int) "|D| grew" 10 (Universe.total_tuples u')

let test_universe_delete_rep () =
  (* Deleting row 0 of R always damages representatives (every class rep
     is lex-smallest, and some class owns row 0) — exercises the repair
     pass. *)
  let rows_r = List.map Tuple.ints [ [ 1; 2 ]; [ 1; 2 ]; [ 2; 1 ]; [ 3; 3 ] ] in
  let rows_p = List.map Tuple.ints [ [ 1 ]; [ 2 ]; [ 1 ] ] in
  let u = build_of rows_r rows_p in
  let d = Delta.of_lists ~adds:[] ~removes:[ Tuple.ints [ 1; 2 ] ] in
  let u' = Universe.apply_delta u [ (0, d) ] in
  check_agree "rep-damaging delete = rebuild" (build_of (apply_ref rows_r d) rows_p) u'

let test_universe_retire_and_mint () =
  let rows_r = List.map Tuple.ints [ [ 1; 1 ]; [ 2; 2 ] ] in
  let rows_p = List.map Tuple.ints [ [ 1 ]; [ 2 ] ] in
  let u = build_of rows_r rows_p in
  let n0 = Universe.n_classes u in
  (* remove the only row joining 1s, add a row joining nothing old *)
  let d =
    Delta.of_lists ~adds:[ Tuple.ints [ 9; 9 ] ]
      ~removes:[ Tuple.ints [ 1; 1 ] ]
  in
  let u' = Universe.apply_delta u [ (0, d) ] in
  let rebuilt = build_of (apply_ref rows_r d) rows_p in
  check_agree "retire + mint = rebuild" rebuilt u';
  Alcotest.(check int) "class count stable here" n0 (Universe.n_classes u');
  (* the full-join class lost a member to the all-miss class *)
  Alcotest.(check bool) "multiplicities shifted" true
    (not (universes_agree u u'))

let test_universe_multi_relation_deltas () =
  let rows_r = List.map Tuple.ints [ [ 1; 2 ]; [ 2; 1 ] ] in
  let rows_p = List.map Tuple.ints [ [ 1 ]; [ 3 ] ] in
  let u = build_of rows_r rows_p in
  let dr = Delta.of_lists ~adds:[ Tuple.ints [ 3; 1 ] ] ~removes:[ Tuple.ints [ 1; 2 ] ] in
  let dp = Delta.of_lists ~adds:[ Tuple.ints [ 2 ] ] ~removes:[ Tuple.ints [ 3 ] ] in
  let u' = Universe.apply_delta u [ (0, dr); (1, dp) ] in
  check_agree "both relations in one call = rebuild"
    (build_of (apply_ref rows_r dr) (apply_ref rows_p dp))
    u';
  (* chained single-relation calls agree too (cache rides along) *)
  let u'' = Universe.apply_delta (Universe.apply_delta u [ (0, dr) ]) [ (1, dp) ] in
  check_agree "chained calls = rebuild" u' u''

let test_universe_drain_and_refill () =
  (* Emptying a relation mid-call is fine as long as the final product
     is non-empty; fully emptying it raises like [build] would. *)
  let rows_r = List.map Tuple.ints [ [ 1 ]; [ 2 ] ] in
  let rows_p = List.map Tuple.ints [ [ 1 ] ] in
  let u = build_of rows_r rows_p in
  let drain = Delta.of_lists ~adds:[] ~removes:(List.map Tuple.ints [ [ 1 ]; [ 2 ] ]) in
  let refill = Delta.of_lists ~adds:[ Tuple.ints [ 5 ] ] ~removes:[] in
  let u' = Universe.apply_delta u [ (0, drain); (0, refill) ] in
  check_agree "drain then refill = rebuild" (build_of [ Tuple.ints [ 5 ] ] rows_p) u';
  Alcotest.(check bool) "emptying the product raises" true
    (match Universe.apply_delta u [ (0, drain) ] with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_universe_kary_delta () =
  let r0 = List.map Tuple.ints [ [ 1; 2 ]; [ 2; 2 ] ] in
  let r1 = List.map Tuple.ints [ [ 2 ]; [ 3 ] ] in
  let r2 = List.map Tuple.ints [ [ 3; 1 ]; [ 1; 1 ]; [ 3; 1 ] ] in
  let rels = [ relation_of "r0" "a" r0; relation_of "r1" "b" r1; relation_of "r2" "c" r2 ] in
  let u = Universe.build_kary rels in
  let d = Delta.of_lists ~adds:[ Tuple.ints [ 1; 1 ] ] ~removes:[ Tuple.ints [ 3; 1 ] ] in
  let u' = Universe.apply_delta u [ (2, d) ] in
  let rebuilt =
    Universe.build_kary
      [ relation_of "r0" "a" r0; relation_of "r1" "b" r1;
        relation_of "r2" "c" (apply_ref r2 d) ]
  in
  check_agree "k-ary delta = build_kary rebuild" rebuilt u'

(* ---------------------- qcheck edit scripts ----------------------- *)

let gen_cell =
  QCheck.Gen.(
    frequency
      [
        (5, map (fun i -> Value.Int i) (int_bound 3));
        (2, return Value.Null);
        (1, map (fun i -> Value.Float (float_of_int i)) (int_bound 2));
        (1, map (fun i -> Value.Str (String.make 1 (Char.chr (49 + i)))) (int_bound 2));
      ])

(* An edit script: initial rows plus batches of (adds, remove picks).
   Removes are resolved against the current rows inside the property
   (pick modulo the live row count), so every remove matches and the
   relation never empties. *)
let gen_script arity =
  QCheck.Gen.(
    let row = map Tuple.of_list (list_repeat arity gen_cell) in
    let batch =
      let* adds = list_size (int_range 0 3) row in
      let* picks = list_size (int_range 0 2) (int_bound 1000) in
      return (adds, picks)
    in
    let* init = list_size (int_range 1 5) row in
    let* batches = list_size (int_range 1 4) batch in
    return (init, batches))

let delta_of_batch rows (adds, picks) =
  (* resolve picks to removable row values, never emptying the relation *)
  let removes, _, _ =
    List.fold_left
      (fun (removes, live, n) pick ->
        if n <= 1 then (removes, live, n)
        else
          let i = pick mod n in
          let v = List.nth live i in
          (v :: removes, List.filteri (fun j _ -> j <> i) live, n - 1))
      ([], rows, List.length rows) picks
  in
  Delta.of_lists ~adds ~removes

(* Drive one relation's edit script against a fixed partner, comparing
   the incrementally maintained universe to a from-scratch build after
   every batch. *)
let run_script ~kary (init_r, batches) =
  let rows_p = List.map Tuple.ints [ [ 1 ]; [ 2 ]; [ 1 ] ] in
  let p = relation_of "p" "b" rows_p in
  let build rows =
    if kary then
      Universe.build_kary
        [ relation_of "r" "a" rows; p; relation_of "q" "c" rows_p ]
    else Universe.build (relation_of "r" "a" rows) p
  in
  let u0 = build init_r in
  let rec go u rows = function
    | [] -> true
    | batch :: rest ->
        let d = delta_of_batch rows batch in
        let u' = Universe.apply_delta u [ (0, d) ] in
        let rows' = apply_ref rows d in
        universes_agree (build rows') u' && go u' rows' rest
  in
  go u0 init_r batches

let gen_script_arity lo hi =
  QCheck.Gen.(
    let* arity = int_range lo hi in
    gen_script arity)

let qcheck_binary_scripts =
  QCheck.Test.make ~name:"apply_delta = rebuild on random edit scripts (binary)"
    ~count:120
    (QCheck.make (gen_script_arity 1 3))
    (run_script ~kary:false)

let qcheck_kary_scripts =
  QCheck.Test.make ~name:"apply_delta = rebuild on random edit scripts (k-ary)"
    ~count:60
    (QCheck.make (gen_script_arity 1 2))
    (run_script ~kary:true)

(* Same oracle with the churned relation living in a paged store: deltas
   mutate the heap file in place through the backend hook. *)
let run_script_paged (init_r, batches) =
  let rows_p = List.map Tuple.ints [ [ 1 ]; [ 2 ]; [ 1 ] ] in
  let p = relation_of "p" "b" rows_p in
  let store =
    Relstore.of_relation ~page_size:512 ~pool_frames:4 ~dest:(tmp_path ".jqh")
      (relation_of "r" "a" init_r)
  in
  let u0 = Universe.build (Relstore.relation store) p in
  let rec go u rows = function
    | [] -> true
    | batch :: rest ->
        let d = delta_of_batch rows batch in
        let u' = Universe.apply_delta u [ (0, d) ] in
        let rows' = apply_ref rows d in
        universes_agree (Universe.build (relation_of "r" "a" rows') p) u'
        && go u' rows' rest
  in
  let ok = go u0 init_r batches in
  let pinned = Buffer_pool.pinned (Relstore.pool store) in
  Relstore.close store;
  ok && Int.equal pinned 0

let qcheck_paged_scripts =
  QCheck.Test.make ~name:"apply_delta = rebuild on random edit scripts (paged)"
    ~count:40
    (QCheck.make (gen_script_arity 1 2))
    run_script_paged

let suite =
  [
    Alcotest.test_case "delta basics" `Quick test_delta_basics;
    Alcotest.test_case "resolve removes by value" `Quick test_resolve_removes;
    Alcotest.test_case "apply_delta on Mem" `Quick test_apply_delta_mem;
    Alcotest.test_case "dict intern_delta" `Quick test_intern_delta;
    Alcotest.test_case "fingerprint accumulator extension" `Quick
      test_fingerprint_extension;
    Alcotest.test_case "heap delete + reopen" `Quick test_heap_delete;
    Alcotest.test_case "heap frontier reclamation" `Quick
      test_heap_frontier_reclaim;
    Alcotest.test_case "btree remove" `Quick test_btree_remove;
    Alcotest.test_case "relstore churn + reopen" `Quick
      test_relstore_churn_reopen;
    Alcotest.test_case "apply_delta on Paged" `Quick
      test_relation_apply_delta_paged;
    Alcotest.test_case "universe: insert-only" `Quick test_universe_insert_only;
    Alcotest.test_case "universe: rep-damaging delete" `Quick
      test_universe_delete_rep;
    Alcotest.test_case "universe: retire + mint" `Quick
      test_universe_retire_and_mint;
    Alcotest.test_case "universe: multi-relation deltas" `Quick
      test_universe_multi_relation_deltas;
    Alcotest.test_case "universe: drain, refill, empty raises" `Quick
      test_universe_drain_and_refill;
    Alcotest.test_case "universe: k-ary delta" `Quick test_universe_kary_delta;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ qcheck_binary_scripts; qcheck_kary_scripts; qcheck_paged_scripts ]
