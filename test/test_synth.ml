(* Synthetic generator (§5.2): configuration validation, value ranges,
   determinism, and the goal-predicate enumeration. *)

module Value = Jqi_relational.Value
module Relation = Jqi_relational.Relation
module Tuple = Jqi_relational.Tuple
module Synth = Jqi_synth.Synth
module Universe = Jqi_core.Universe
module Bits = Jqi_util.Bits
module Prng = Jqi_util.Prng

let test_config_validation () =
  Alcotest.(check bool) "zero arity rejected" true
    (try ignore (Synth.config 0 3 50 100); false with Invalid_argument _ -> true);
  Alcotest.(check bool) "zero values rejected" true
    (try ignore (Synth.config 2 3 50 0); false with Invalid_argument _ -> true)

let test_shapes_and_ranges () =
  let prng = Prng.create 4 in
  let c = Synth.config 3 4 20 5 in
  let r, p = Synth.generate prng c in
  Alcotest.(check int) "r arity" 3 (Relation.arity r);
  Alcotest.(check int) "p arity" 4 (Relation.arity p);
  Alcotest.(check int) "r rows" 20 (Relation.cardinality r);
  Alcotest.(check int) "p rows" 20 (Relation.cardinality p);
  List.iter
    (fun rel ->
      Relation.iter
        (fun t ->
          Array.iter
            (function
              | Value.Int i ->
                  Alcotest.(check bool) "value in range" true (i >= 0 && i < 5)
              | _ -> Alcotest.fail "non-int value")
            t)
        rel)
    [ r; p ]

let test_deterministic () =
  let c = Synth.config 2 2 10 10 in
  let r1, p1 = Synth.generate (Prng.create 8) c in
  let r2, p2 = Synth.generate (Prng.create 8) c in
  Alcotest.(check bool) "same r" true (Relation.equal_contents r1 r2);
  Alcotest.(check bool) "same p" true (Relation.equal_contents p1 p2)

let test_paper_configs () =
  Alcotest.(check int) "six configs" 6 (List.length Synth.paper_configs);
  let c = List.hd Synth.paper_configs in
  Alcotest.(check int) "first is (3,3,100,100)" 100 c.rows

let test_goals_of_size () =
  let prng = Prng.create 12 in
  let r, p = Synth.generate prng (Synth.config 2 2 15 3) in
  let u = Universe.build r p in
  (* Size 0: exactly the empty predicate (some tuple always realizes a
     signature ⊇ ∅). *)
  (match Synth.goals_of_size u ~size:0 with
  | [ g ] -> Alcotest.(check bool) "empty goal" true (Bits.is_empty g)
  | l -> Alcotest.failf "expected one size-0 goal, got %d" (List.length l));
  (* Every size-k goal is non-nullable and has cardinality k; the list is
     duplicate-free. *)
  let sigs = Universe.signatures u in
  for size = 1 to 3 do
    let goals = Synth.goals_of_size u ~size in
    List.iter
      (fun g ->
        Alcotest.(check int) "cardinality" size (Bits.cardinal g);
        Alcotest.(check bool) "non-nullable" true
          (List.exists (fun s -> Bits.subset g s) sigs))
      goals;
    let distinct =
      List.fold_left
        (fun acc g -> if List.exists (Bits.equal g) acc then acc else g :: acc)
        [] goals
    in
    Alcotest.(check int) "distinct" (List.length goals) (List.length distinct)
  done

let test_goals_complete () =
  (* goals_of_size finds *all* non-nullable predicates of each size:
     cross-check against direct enumeration of PP(Ω). *)
  let prng = Prng.create 21 in
  let r, p = Synth.generate prng (Synth.config 2 2 10 2) in
  let u = Universe.build r p in
  let sigs = Universe.signatures u in
  let omega = Universe.omega u in
  for size = 0 to 4 do
    let expected =
      List.filter
        (fun theta ->
          Bits.cardinal theta = size
          && List.exists (fun s -> Bits.subset theta s) sigs)
        (Jqi_core.Omega.all_predicates omega)
    in
    Alcotest.(check int)
      (Printf.sprintf "complete at size %d" size)
      (List.length expected)
      (List.length (Synth.goals_of_size u ~size))
  done

let test_join_ratio_calibration () =
  (* Regression guard for the generator: the paper's measured join ratios
     are the strongest validation (EXPERIMENTS.md); keep ours in their
     neighbourhood.  Deterministic via the fixed seed. *)
  let mean_ratio config =
    let prng = Prng.create 2014 in
    let acc = ref 0. in
    let runs = 15 in
    for _ = 1 to runs do
      let r, p = Synth.generate prng config in
      acc := !acc +. Universe.join_ratio (Universe.build r p)
    done;
    !acc /. float_of_int runs
  in
  List.iter
    (fun (config, paper) ->
      let ours = mean_ratio config in
      Alcotest.(check bool)
        (Printf.sprintf "ratio %.3f near paper %.3f" ours paper)
        true
        (Float.abs (ours -. paper) < 0.25))
    [
      (Synth.config 3 3 100 100, 1.647);
      (Synth.config 3 3 50 100, 1.341);
      (Synth.config 3 4 50 100, 1.458);
      (Synth.config 2 5 50 100, 1.377);
      (Synth.config 2 4 50 50, 1.596);
    ]

let suite =
  [
    Alcotest.test_case "config validation" `Quick test_config_validation;
    Alcotest.test_case "shapes and value ranges" `Quick test_shapes_and_ranges;
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "paper configs" `Quick test_paper_configs;
    Alcotest.test_case "goals_of_size invariants" `Quick test_goals_of_size;
    Alcotest.test_case "goals_of_size complete" `Quick test_goals_complete;
    Alcotest.test_case "join ratio calibration" `Quick test_join_ratio_calibration;
  ]
