(* Experiment drivers: averaging, figure/table generation at toy sizes,
   Theorem 6.1 agreement. *)

module E = Jqi_experiments
module Synth = Jqi_synth.Synth

let m strategy interactions seconds : E.Runner.measurement =
  { strategy; interactions; seconds; verified = true }

let test_average () =
  let runs = [ [ m "BU" 2. 0.1; m "TD" 4. 0.2 ]; [ m "BU" 4. 0.3; m "TD" 6. 0.4 ] ] in
  match E.Runner.average runs with
  | [ bu; td ] ->
      Alcotest.(check string) "name" "BU" bu.strategy;
      Alcotest.(check (float 1e-9)) "bu interactions" 3. bu.interactions;
      Alcotest.(check (float 1e-9)) "td interactions" 5. td.interactions;
      Alcotest.(check (float 1e-9)) "td seconds" 0.3 td.seconds
  | _ -> Alcotest.fail "wrong shape"

let test_average_empty () =
  Alcotest.(check int) "empty ok" 0 (List.length (E.Runner.average []))

let test_best_by_interactions () =
  match E.Runner.best_by_interactions [ m "A" 5. 0.; m "B" 2. 0.; m "C" 3. 0. ] with
  | Some best -> Alcotest.(check string) "B wins" "B" best.strategy
  | None -> Alcotest.fail "expected a winner"

let test_run_goal_shape () =
  let universe = Jqi_core.Universe.build Fixtures.r0 Fixtures.p0 in
  let goal = Fixtures.pred0 [ (0, 2) ] in
  let ms = E.Runner.run_goal universe ~goal (E.Runner.paper_strategies ~seed:1 ()) in
  Alcotest.(check (list string)) "strategy order" E.Runner.strategy_names
    (List.map (fun (x : E.Runner.measurement) -> x.strategy) ms);
  List.iter
    (fun (x : E.Runner.measurement) ->
      Alcotest.(check bool) (x.strategy ^ " verified") true x.verified;
      Alcotest.(check bool) "positive interactions" true (x.interactions >= 1.))
    ms

let test_fig6_smoke () =
  let results = E.Fig6.run { name = "test"; scale = 1; seed = 3 } in
  Alcotest.(check int) "five joins" 5 (List.length results);
  List.iter
    (fun (r : E.Fig6.join_result) ->
      Alcotest.(check int) "five strategies" 5 (List.length r.measurements);
      List.iter
        (fun (x : E.Runner.measurement) ->
          Alcotest.(check bool)
            (r.label ^ " " ^ x.strategy ^ " verified")
            true x.verified)
        r.measurements)
    results;
  (* Rendering never raises. *)
  let chart = E.Fig6.interactions_chart ~title:"t" results in
  Alcotest.(check bool) "chart nonempty" true (String.length chart > 0);
  let table = E.Fig6.time_table ~paper:E.Paper.fig6c_times_sf1 results in
  Alcotest.(check bool) "table nonempty" true (String.length table > 0)

let test_fig7_smoke () =
  let result = E.Fig7.run ~seed:3 ~runs:2 ~goals_per_size:1 (Synth.config 2 2 10 4) in
  Alcotest.(check int) "sizes 0..4" 5 (List.length result.by_size);
  Alcotest.(check bool) "join ratio positive" true (result.join_ratio > 0.);
  let chart = E.Fig7.interactions_chart result in
  Alcotest.(check bool) "chart ok" true (String.length chart > 0);
  let table = E.Fig7.time_table ~paper:(snd (List.hd E.Paper.fig7_times)) result in
  Alcotest.(check bool) "table ok" true (String.length table > 0)

let test_table1_rows () =
  let rows =
    [
      E.Table1.of_measurements ~dataset:"d" ~goal:"g" ~product_size:100.
        ~join_ratio:1.5
        [ m "BU" 3. 0.1; m "TD" 3. 0.05; m "L2S" 7. 1.0 ];
    ]
  in
  (match rows with
  | [ r ] ->
      Alcotest.(check string) "ties joined" "BU/TD" r.best;
      Alcotest.(check (float 1e-9)) "interactions" 3. r.best_interactions
  | _ -> Alcotest.fail "shape");
  let rendered = E.Table1.render ~paper_hint:[ ("TD", 3) ] rows in
  Alcotest.(check bool) "rendered" true (String.length rendered > 0)

let test_paper_data_shape () =
  Alcotest.(check int) "5 strategies" 5 (List.length E.Paper.strategy_order);
  Alcotest.(check int) "table1 sf1 rows" 5 (List.length E.Paper.table1_tpch_sf1);
  Alcotest.(check int) "table1 synth blocks" 6 (List.length E.Paper.table1_synth);
  Alcotest.(check int) "fig7 tables" 6 (List.length E.Paper.fig7_times);
  List.iter
    (fun (_, t) ->
      Alcotest.(check int) "5 sizes" 5 (Array.length t);
      Array.iter (fun row -> Alcotest.(check int) "5 cols" 5 (Array.length row)) t)
    E.Paper.fig7_times

let test_scaling () =
  let points = E.Scaling.run ~seed:4 ~runs:1 [ 10; 20 ] in
  Alcotest.(check int) "two points" 2 (List.length points);
  List.iter
    (fun (pt : E.Scaling.point) ->
      Alcotest.(check int) "product" (pt.rows * pt.rows) pt.product;
      Alcotest.(check bool) "classes positive" true (pt.classes > 0.);
      Alcotest.(check bool) "build time non-negative" true (pt.build_seconds >= 0.))
    points;
  Alcotest.(check bool) "render ok" true
    (String.length (E.Scaling.render points) > 0)

let test_semijoin_exp () =
  let points = E.Semijoin_exp.run ~seed:2 ~per_point:2 [ (3, 6); (4, 8) ] in
  Alcotest.(check int) "two points" 2 (List.length points);
  List.iter
    (fun (p : E.Semijoin_exp.point) ->
      Alcotest.(check bool) "agree" true p.agree;
      Alcotest.(check bool) "fraction in [0,1]" true
        (p.sat_fraction >= 0. && p.sat_fraction <= 1.))
    points;
  Alcotest.(check bool) "render ok" true
    (String.length (E.Semijoin_exp.render points) > 0)

let suite =
  [
    Alcotest.test_case "runner average" `Quick test_average;
    Alcotest.test_case "runner average empty" `Quick test_average_empty;
    Alcotest.test_case "best by interactions" `Quick test_best_by_interactions;
    Alcotest.test_case "run_goal shape" `Quick test_run_goal_shape;
    Alcotest.test_case "fig6 smoke" `Quick test_fig6_smoke;
    Alcotest.test_case "fig7 smoke" `Quick test_fig7_smoke;
    Alcotest.test_case "table1 rows" `Quick test_table1_rows;
    Alcotest.test_case "paper data shape" `Quick test_paper_data_shape;
    Alcotest.test_case "scaling experiment" `Quick test_scaling;
    Alcotest.test_case "semijoin experiment" `Quick test_semijoin_exp;
  ]
