(* Metrics-level regression tests: oracle-interaction counters pinned to
   the values recorded in EXPERIMENTS.md.

   Two layers of pinning:
   - the paper's D0 instance (Figure 3/5 fixture) with the goal T(1,1),
     per strategy — cheap enough to run on every test invocation;
   - TPC-H scale 1, seed 2014, Joins 4 and 5 under the fast lookahead
     engine — the same workload BENCH_lookahead.json measures, so a
     regression in question counts here flags an engine change before the
     bench does.

   These counts are deterministic: the honest oracle and every strategy
   below are deterministic, and counter updates run on the main domain
   only (no domain fan-out in these runs). *)

module Obs = Jqi_obs.Obs
module Universe = Jqi_core.Universe
module Strategy = Jqi_core.Strategy
module Oracle = Jqi_core.Oracle
module Inference = Jqi_core.Inference
module Tpch = Jqi_tpch.Tpch

(* Run one inference with a clean, enabled registry; return the result
   with the counter snapshot. *)
let instrumented universe strategy ~goal =
  Obs.reset ();
  Obs.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.reset ())
    (fun () ->
      let result = Inference.run universe strategy (Oracle.honest ~goal) in
      (result, Obs.Report.snapshot ()))

let check_questions name ~expect (result, report) =
  Alcotest.(check int)
    (name ^ ": oracle.questions")
    expect
    (Obs.Report.counter report "oracle.questions");
  Alcotest.(check int)
    (name ^ ": counter agrees with n_interactions")
    result.Inference.n_interactions
    (Obs.Report.counter report "oracle.questions");
  Alcotest.(check int)
    (name ^ ": answers partition questions")
    (Obs.Report.counter report "oracle.questions")
    (Obs.Report.counter report "oracle.answers_positive"
    + Obs.Report.counter report "oracle.answers_negative")

(* D0 with goal T(1,1) = {(A1,B3)}: the EXPERIMENTS.md "D0 fixture metrics"
   table. *)
let test_d0_bu () =
  check_questions "BU" ~expect:2
    (instrumented Fixtures.universe0 Strategy.bu ~goal:(Fixtures.pred0 [ (0, 2) ]))

let test_d0_td () =
  check_questions "TD" ~expect:3
    (instrumented Fixtures.universe0 Strategy.td ~goal:(Fixtures.pred0 [ (0, 2) ]))

let test_d0_l2s () =
  let ((_, report) as run) =
    instrumented Fixtures.universe0 Strategy.l2s ~goal:(Fixtures.pred0 [ (0, 2) ])
  in
  check_questions "L2S" ~expect:4 run;
  (* The fast engine both scored and pruned candidates, and its
     State.Key-canonical branch cache was exercised on both sides. *)
  let c = Obs.Report.counter report in
  Alcotest.(check bool) "candidates scored" true (c "lookahead.candidates_scored" > 0);
  Alcotest.(check bool) "candidates pruned" true (c "lookahead.candidates_pruned" > 0);
  Alcotest.(check bool) "branch cache hits" true (c "lookahead.branch_cache_hit" > 0);
  Alcotest.(check bool) "branch cache misses" true (c "lookahead.branch_cache_miss" > 0)

(* TPC-H scale 1, seed 2014, fast engine: the EXPERIMENTS.md lookahead
   table (Joins 4/5 × k=1/2 → 6/5/7/5 questions). *)
let test_tpch_lookahead () =
  let db = Tpch.generate ~seed:2014 ~scale:1 () in
  let joins = Tpch.joins db in
  List.iter
    (fun (idx, k, expect) ->
      let join : Tpch.goal_join = List.nth joins idx in
      let universe = Universe.build join.r join.p in
      let goal = Tpch.goal_predicate (Universe.omega universe) join in
      let ((_, report) as run) =
        instrumented universe (Strategy.lks k) ~goal
      in
      check_questions (Printf.sprintf "%s k=%d" join.label k) ~expect run;
      let c = Obs.Report.counter report in
      Alcotest.(check bool) "scored some candidates" true
        (c "lookahead.candidates_scored" > 0);
      Alcotest.(check bool) "pruned some candidates" true
        (c "lookahead.candidates_pruned" > 0);
      if k = 2 then
        Alcotest.(check bool) "branch cache used at k=2" true
          (c "lookahead.branch_cache_hit" > 0
          && c "lookahead.branch_cache_miss" > 0))
    [ (3, 1, 6); (3, 2, 5); (4, 1, 7); (4, 2, 5) ]

let suite =
  [
    Alcotest.test_case "D0 BU question count" `Quick test_d0_bu;
    Alcotest.test_case "D0 TD question count" `Quick test_d0_td;
    Alcotest.test_case "D0 L2S question count + engine counters" `Quick test_d0_l2s;
    Alcotest.test_case "TPC-H fast lookahead question counts" `Slow test_tpch_lookahead;
  ]
