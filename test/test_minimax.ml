(* The minimax-optimal strategy (§4.1): sanity on tiny instances and
   optimality as a lower bound for the heuristic strategies. *)

open Fixtures
module Bits = Jqi_util.Bits
module Omega = Jqi_core.Omega
module Universe = Jqi_core.Universe
module Strategy = Jqi_core.Strategy
module Oracle = Jqi_core.Oracle
module Inference = Jqi_core.Inference
module Minimax = Jqi_core.Minimax

let tiny_universe sigs =
  (* A universe given directly by signatures over a 2x2 Ω. *)
  let omega = Omega.create ~n:2 ~m:2 () in
  Universe.of_signature_list omega
    (List.map (fun pairs -> (Omega.of_pairs omega pairs, 1, (0, 0))) sigs)

let test_single_class () =
  (* One class: a single question settles everything. *)
  let u = tiny_universe [ [ (0, 0) ] ] in
  Alcotest.(check int) "one interaction" 1 (Minimax.optimal_interactions u)

let test_two_incomparable_classes () =
  (* Two incomparable signatures: neither label of one can certify the
     other, so two questions are needed in the worst case. *)
  let u = tiny_universe [ [ (0, 0) ]; [ (1, 1) ] ] in
  Alcotest.(check int) "two interactions" 2 (Minimax.optimal_interactions u)

let test_chain_classes () =
  (* ∅ ⊂ {(0,0)}: asking the top first: if positive, tpos = {(0,0)} and ∅
     stays informative; asking ∅ first: positive ends (tpos = ∅ certifies
     both)... the optimum is still 2 in the worst case. *)
  let u = tiny_universe [ []; [ (0, 0) ] ] in
  Alcotest.(check int) "worst case two" 2 (Minimax.optimal_interactions u)

let test_example_2_1_optimal_vs_strategies () =
  (* The optimal worst-case count on Example 2.1 lower-bounds every
     strategy's worst case over the same goals, and the strategies reach
     within a small factor of it. *)
  let opt = Minimax.optimal_interactions universe0 in
  Alcotest.(check bool) "positive" true (opt >= 1);
  let worst strategy =
    List.fold_left
      (fun acc goal ->
        let result =
          Inference.run universe0 strategy (Oracle.honest ~goal)
        in
        max acc result.n_interactions)
      0
      (Omega.empty omega0 :: Omega.full omega0 :: Universe.signatures universe0)
  in
  List.iter
    (fun strategy ->
      Alcotest.(check bool)
        (Printf.sprintf "%s worst >= optimal" (Strategy.name strategy))
        true
        (worst strategy >= opt))
    [ Strategy.bu; Strategy.td; Strategy.l1s; Strategy.l2s ]

let test_optimal_strategy_plays_optimally () =
  (* Playing the minimax strategy against the adversarial honest user never
     exceeds the optimal worst case, for any goal. *)
  let opt = Minimax.optimal_interactions universe0 in
  List.iter
    (fun goal ->
      let strategy = Minimax.strategy universe0 in
      let result = Inference.run universe0 strategy (Oracle.honest ~goal) in
      Alcotest.(check bool) "within optimal bound" true
        (result.n_interactions <= opt);
      Alcotest.(check bool) "equivalent" true
        (Inference.verified universe0 ~goal result))
    (Omega.empty omega0 :: Omega.full omega0 :: Universe.signatures universe0)

let test_node_budget () =
  Alcotest.check_raises "budget enforced" Minimax.Too_large (fun () ->
      ignore (Minimax.optimal_interactions ~max_nodes:1 universe0))

let suite =
  [
    Alcotest.test_case "single class" `Quick test_single_class;
    Alcotest.test_case "two incomparable classes" `Quick test_two_incomparable_classes;
    Alcotest.test_case "chain classes" `Quick test_chain_classes;
    Alcotest.test_case "optimal lower-bounds strategies" `Quick test_example_2_1_optimal_vs_strategies;
    Alcotest.test_case "minimax strategy plays optimally" `Quick test_optimal_strategy_plays_optimally;
    Alcotest.test_case "node budget" `Quick test_node_budget;
  ]
