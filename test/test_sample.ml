(* Tuple-level samples and consistency checking (§3.1). *)

open Fixtures
module Bits = Jqi_util.Bits
module Sample = Jqi_core.Sample
module Omega = Jqi_core.Omega
module Brute = Jqi_core.Brute

let s0 =
  (* Example 3.1's consistent sample S0. *)
  Sample.of_list
    [
      (d0 (2, 2), Sample.Positive);
      (d0 (4, 1), Sample.Positive);
      (d0 (3, 2), Sample.Negative);
    ]

let test_accessors () =
  Alcotest.(check int) "size" 3 (Sample.size s0);
  Alcotest.(check int) "positives" 2 (List.length (Sample.positives s0));
  Alcotest.(check int) "negatives" 1 (List.length (Sample.negatives s0));
  Alcotest.(check int) "examples in order" 3 (List.length (Sample.examples s0))

let test_add_rules () =
  let s = Sample.add Sample.empty ~tuple:(d0 (1, 1)) ~label:Sample.Positive in
  (* Re-adding with the same label is idempotent. *)
  let s' = Sample.add s ~tuple:(d0 (1, 1)) ~label:Sample.Positive in
  Alcotest.(check int) "idempotent" 1 (Sample.size s');
  Alcotest.(check bool) "conflict raises" true
    (try
       ignore (Sample.add s ~tuple:(d0 (1, 1)) ~label:Sample.Negative);
       false
     with Invalid_argument _ -> true)

let test_most_specific () =
  (* T(S0+) = θ0 = {(A1,B1),(A2,B3)} (Example 3.1). *)
  Alcotest.check bits_testable "θ0"
    (pred0 [ (0, 0); (1, 2) ])
    (Sample.most_specific omega0 r0 p0 s0);
  (* Empty sample: T(∅) = Ω. *)
  Alcotest.check bits_testable "Ω for empty"
    (Omega.full omega0)
    (Sample.most_specific omega0 r0 p0 Sample.empty)

let test_consistency () =
  Alcotest.(check bool) "S0 consistent" true (Sample.consistent omega0 r0 p0 s0);
  (* Example 3.1's inconsistent S0'. *)
  let s0' =
    Sample.of_list
      [
        (d0 (1, 2), Sample.Positive);
        (d0 (1, 3), Sample.Positive);
        (d0 (3, 1), Sample.Negative);
      ]
  in
  Alcotest.(check bool) "S0' inconsistent" false
    (Sample.consistent omega0 r0 p0 s0')

let test_predicate_consistent () =
  (* Example 3.1 also names {(A1,B1)} as consistent-but-not-minimal. *)
  Alcotest.(check bool) "θ0 consistent" true
    (Sample.predicate_consistent omega0 r0 p0 s0 (pred0 [ (0, 0); (1, 2) ]));
  Alcotest.(check bool) "θ0' consistent" true
    (Sample.predicate_consistent omega0 r0 p0 s0 (pred0 [ (0, 0) ]));
  Alcotest.(check bool) "∅ selects the negative" false
    (Sample.predicate_consistent omega0 r0 p0 s0 (pred0 []))

(* §3.1's soundness/completeness argument, brute-forced: the PTIME check
   agrees with "∃θ consistent" over all of PP(Ω), for random samples. *)
let test_check_vs_brute () =
  let prng = Jqi_util.Prng.create 41 in
  for _ = 1 to 100 do
    let sample =
      List.fold_left
        (fun s ij ->
          match Jqi_util.Prng.int prng 3 with
          | 0 -> Sample.add s ~tuple:(d0 ij) ~label:Sample.Positive
          | 1 -> Sample.add s ~tuple:(d0 ij) ~label:Sample.Negative
          | _ -> s)
        Sample.empty
        [ (1, 1); (2, 2); (3, 3); (4, 1); (2, 3) ]
    in
    let brute =
      Brute.consistent_predicates omega0
        ~pos:
          (List.map (Sample.signature_of_tuple omega0 r0 p0) (Sample.positives sample))
        ~neg:
          (List.map (Sample.signature_of_tuple omega0 r0 p0) (Sample.negatives sample))
      <> []
    in
    Alcotest.(check bool) "agrees with brute force" brute
      (Sample.consistent omega0 r0 p0 sample)
  done

let suite =
  [
    Alcotest.test_case "accessors" `Quick test_accessors;
    Alcotest.test_case "add rules" `Quick test_add_rules;
    Alcotest.test_case "most specific (example 3.1)" `Quick test_most_specific;
    Alcotest.test_case "consistency (example 3.1)" `Quick test_consistency;
    Alcotest.test_case "predicate consistency" `Quick test_predicate_consistent;
    Alcotest.test_case "PTIME check vs brute force" `Quick test_check_vs_brute;
  ]
