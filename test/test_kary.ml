(* Differential suite for the k-ary machinery: on random small NULL- and
   duplicate-heavy instances over 2–4 relations, Leapfrog Triejoin (under
   every candidate variable ordering) must agree with the left-deep
   pairwise composition and with the never-optimized nested-loop oracle
   on result multisets; [Universe.build_kary] must reproduce
   [Universe.build_kary_naive] exactly, degenerate byte-identically to
   [Universe.build] on two relations, and refuse oversized walks with
   the typed [Kary_too_large]; sampled k-ary universes must depend only
   on the seed and collapse to [build_sampled] on k = 2. *)

module Bits = Jqi_util.Bits
module Prng = Jqi_util.Prng
module Value = Jqi_relational.Value
module Schema = Jqi_relational.Schema
module Tuple = Jqi_relational.Tuple
module Relation = Jqi_relational.Relation
module Leapfrog = Jqi_relational.Leapfrog
module Ordering = Jqi_joinpath.Ordering
module Omega = Jqi_core.Omega
module Universe = Jqi_core.Universe

let relation_of name prefix rows =
  let arity = match rows with [] -> 1 | row :: _ -> Tuple.arity row in
  Relation.of_list ~name
    ~schema:
      (Schema.of_names ~ty:Value.TInt
         (List.init arity (fun i -> Printf.sprintf "%s%d" prefix i)))
    rows

(* Structural equality of two universes, k-ary representatives included.
   Returns bool so it can sit inside qcheck properties. *)
let universes_agree u1 u2 =
  Int.equal (Universe.n_classes u1) (Universe.n_classes u2)
  && Int.equal (Universe.total_tuples u1) (Universe.total_tuples u2)
  && Int.equal (Universe.n_relations u1) (Universe.n_relations u2)
  &&
  let rec go i =
    i >= Universe.n_classes u1
    || Bits.equal (Universe.signature u1 i) (Universe.signature u2 i)
       && Int.equal (Universe.count u1 i) (Universe.count u2 i)
       && (let r1 = (Universe.cls u1 i).Universe.rep
           and r2 = (Universe.cls u2 i).Universe.rep in
           Int.equal (Array.length r1) (Array.length r2)
           && Array.for_all2 Int.equal r1 r2)
       && go (i + 1)
  in
  go 0

(* ------------------------- instance generator ---------------------- *)

(* NULL- and duplicate-heavy mixed-type cells over tiny pools so cross
   bits actually fire and quotient classes repeat. *)
let gen_cell =
  QCheck.Gen.(
    frequency
      [
        (5, map (fun i -> Value.Int i) (int_bound 2));
        (3, return Value.Null);
        (1, return (Value.Float Float.nan));
        (1, map (fun i -> Value.Float (float_of_int i)) (int_bound 1));
        (1, map (fun i -> Value.Str (String.make 1 (Char.chr (97 + i)))) (int_bound 1));
      ])

(* [k] relations, arities 1–2, 1–4 rows each, drawn from per-relation
   pools so duplicate rows are common. *)
let gen_instance ~min_k ~max_k ~max_rows =
  QCheck.Gen.(
    let row arity = map Tuple.of_list (list_repeat arity gen_cell) in
    let rows_of arity =
      let* dup = bool in
      if dup then
        let* pool = list_size (int_range 1 2) (row arity) in
        list_size (int_range 1 max_rows) (oneofl pool)
      else list_size (int_range 1 max_rows) (row arity)
    in
    let* k = int_range min_k max_k in
    let rel _ =
      let* arity = int_range 1 2 in
      rows_of arity
    in
    let rec build i acc =
      if i >= k then return (List.rev acc)
      else
        let* rows = rel i in
        build (i + 1) (rows :: acc)
    in
    build 0 [])

let relations_of rowss =
  List.mapi
    (fun i rows ->
      relation_of
        (Printf.sprintf "r%d" i)
        (String.make 1 (Char.chr (97 + i)))
        rows)
    rowss

let print_instance rowss =
  String.concat " | "
    (List.map
       (fun rows -> String.concat ";" (List.map Tuple.to_string rows))
       rowss)

(* Random equality constraints between adjacent-ish relations so the
   join is neither empty-by-construction nor a pure cross product. *)
let gen_eqs rels =
  QCheck.Gen.(
    let k = Array.length rels in
    let arity i = Schema.arity (Relation.schema rels.(i)) in
    let pos =
      let* i = int_range 0 (k - 1) in
      let* c = int_bound (arity i - 1) in
      return (i, c)
    in
    let chain =
      (* a chain i ~ i+1 keeps most instances connected *)
      let rec go i acc =
        if i >= k - 1 then return (List.rev acc)
        else
          let* c1 = int_bound (arity i - 1)
          and* c2 = int_bound (arity (i + 1) - 1) in
          go (i + 1) (((i, c1), (i + 1, c2)) :: acc)
      in
      go 0 []
    in
    let* base = chain in
    let* extra = list_size (int_bound 2) (pair pos pos) in
    return (base @ extra))

let gen_join_problem =
  QCheck.Gen.(
    let* rowss = gen_instance ~min_k:2 ~max_k:4 ~max_rows:4 in
    let rels = Array.of_list (relations_of rowss) in
    let* eqs = gen_eqs rels in
    return (rowss, eqs))

let arb_join_problem =
  QCheck.make
    ~print:(fun (rowss, eqs) ->
      Printf.sprintf "%s eqs=[%s]" (print_instance rowss)
        (String.concat "; "
           (List.map
              (fun ((i, c), (j, d)) -> Printf.sprintf "(%d,%d)=(%d,%d)" i c j d)
              eqs)))
    gen_join_problem

(* Canonical multiset form of a join result. *)
let canon results =
  let l = List.map Array.to_list (Array.to_list results) in
  List.sort (List.compare Int.compare) l

let row_lists_equal a b = List.equal (List.equal Int.equal) a b

(* ------------------------- join differential ----------------------- *)

let qcheck_triejoin_matches_oracles =
  QCheck.Test.make
    ~name:"triejoin (all orderings) = reference = compose on multisets"
    ~count:600 arb_join_problem (fun (rowss, eqs) ->
      let rels = Array.of_list (relations_of rowss) in
      let expected = canon (Leapfrog.reference rels eqs) in
      let composed = canon (Leapfrog.compose rels eqs) in
      row_lists_equal expected composed
      && List.for_all
           (fun order ->
             row_lists_equal expected (canon (Leapfrog.join ~order rels eqs)))
           (Ordering.candidates (Leapfrog.variables rels eqs)))

let test_join_null_semantics () =
  (* NULL = NULL and NaN = NaN never join, matching signature bits. *)
  let r = relation_of "r" "a" [ Tuple.of_list [ Value.Null ] ] in
  let p = relation_of "p" "b" [ Tuple.of_list [ Value.Null ] ] in
  let rels = [| r; p |] in
  let eqs = [ ((0, 0), (1, 0)) ] in
  Alcotest.(check int) "NULL never joins" 0
    (Array.length (Leapfrog.join rels eqs));
  let fnan = Tuple.of_list [ Value.Float Float.nan ] in
  let rels2 = [| relation_of "r" "a" [ fnan ]; relation_of "p" "b" [ fnan ] |] in
  Alcotest.(check int) "NaN never joins" 0
    (Array.length (Leapfrog.join rels2 eqs));
  Alcotest.(check int) "reference agrees" 0
    (Array.length (Leapfrog.reference rels2 eqs))

let test_join_cross_product () =
  (* No constraints: every evaluator returns the full product. *)
  let mk n name pre =
    relation_of name pre (List.init n (fun i -> Tuple.of_list [ Value.Int i ]))
  in
  let rels = [| mk 2 "r" "a"; mk 3 "p" "b" |] in
  Alcotest.(check int) "cross product size" 6
    (Array.length (Leapfrog.join rels []));
  Alcotest.(check int) "compose agrees" 6
    (Array.length (Leapfrog.compose rels []))

(* ------------------------------ unary ------------------------------ *)

let qcheck_unary_is_set_intersection =
  QCheck.Test.make ~name:"unary leapfrog = sorted set intersection" ~count:300
    QCheck.(
      make
        ~print:(fun ls ->
          String.concat " | "
            (List.map
               (fun l -> String.concat ";" (List.map string_of_int l))
               ls))
        Gen.(list_size (int_range 1 4) (list_size (int_bound 12) (int_bound 9))))
    (fun raw ->
      let sets =
        List.map (fun l -> List.sort_uniq Int.compare l) raw
      in
      let arrays = List.map Array.of_list sets in
      let expected =
        match sets with
        | [] -> []
        | first :: rest ->
            List.filter
              (fun v -> List.for_all (List.exists (Int.equal v)) rest)
              first
      in
      List.equal Int.equal expected (Leapfrog.unary arrays))

let test_unary_empty_input () =
  Alcotest.check_raises "intersection of no sets"
    (Invalid_argument "Leapfrog.unary: intersection of no sets") (fun () ->
      ignore (Leapfrog.unary []))

(* ------------------------ universe differential -------------------- *)

let arb_instance ~min_k ~max_k ~max_rows =
  QCheck.make ~print:print_instance (gen_instance ~min_k ~max_k ~max_rows)

let qcheck_kary_quotient_equals_naive =
  QCheck.Test.make ~name:"build_kary = build_kary_naive (k = 2..4)" ~count:250
    (arb_instance ~min_k:2 ~max_k:4 ~max_rows:4)
    (fun rowss ->
      let rels = relations_of rowss in
      universes_agree (Universe.build_kary_naive rels) (Universe.build_kary rels))

let qcheck_k2_is_binary_build =
  QCheck.Test.make ~name:"k = 2 build_kary = Universe.build (byte identity)"
    ~count:250
    (arb_instance ~min_k:2 ~max_k:2 ~max_rows:6)
    (fun rowss ->
      match relations_of rowss with
      | [ r; p ] ->
          let b = Universe.build r p and k = Universe.build_kary [ r; p ] in
          universes_agree b k
          && Int.equal
               (Omega.width (Universe.omega b))
               (Omega.width (Universe.omega k))
      | _ -> false)

let qcheck_sampled_kary_deterministic =
  QCheck.Test.make ~name:"build_sampled_kary depends only on the seed"
    ~count:100
    (arb_instance ~min_k:2 ~max_k:3 ~max_rows:4)
    (fun rowss ->
      let rels = relations_of rowss in
      let u1 = Universe.build_sampled_kary (Prng.create 7) ~tuples:20 rels in
      let u2 = Universe.build_sampled_kary (Prng.create 7) ~tuples:20 rels in
      universes_agree u1 u2)

let qcheck_sampled_k2_matches_binary =
  QCheck.Test.make ~name:"k = 2 build_sampled_kary = build_sampled" ~count:100
    (arb_instance ~min_k:2 ~max_k:2 ~max_rows:4)
    (fun rowss ->
      match relations_of rowss with
      | [ r; p ] ->
          universes_agree
            (Universe.build_sampled (Prng.create 11) ~pairs:15 r p)
            (Universe.build_sampled_kary (Prng.create 11) ~tuples:15 [ r; p ])
      | _ -> false)

let test_kary_too_large () =
  (* Three relations of distinct rows: the distinct-profile walk must
     trip a tiny limit with the typed error, not a stack blowout. *)
  let mk name pre n =
    relation_of name pre (List.init n (fun i -> Tuple.of_list [ Value.Int i ]))
  in
  let rels = [ mk "r" "a" 5; mk "p" "b" 5; mk "q" "c" 5 ] in
  (match Universe.build_kary ~limit:10 rels with
  | _ -> Alcotest.fail "expected Kary_too_large"
  | exception Universe.Kary_too_large { work; limit } ->
      Alcotest.(check int) "limit echoed" 10 limit;
      Alcotest.(check bool) "work exceeds limit" true (work > limit));
  (* The same product fits a generous limit and matches the oracle. *)
  let u = Universe.build_kary ~limit:1_000_000 rels in
  Alcotest.(check bool) "generous limit agrees with naive" true
    (universes_agree (Universe.build_kary_naive rels) u)

let test_kary_validation () =
  let r = relation_of "r" "a" [ Tuple.of_list [ Value.Int 1 ] ] in
  Alcotest.(check bool) "fewer than two relations" true
    (match Universe.build_kary [ r ] with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "sampled: fewer than two relations" true
    (match Universe.build_sampled_kary (Prng.create 1) ~tuples:5 [ r ] with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "sampled: non-positive sample" true
    (match Universe.build_sampled_kary (Prng.create 1) ~tuples:0 [ r; r ] with
    | _ -> false
    | exception Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "NULL/NaN never join" `Quick test_join_null_semantics;
    Alcotest.test_case "unconstrained join is the product" `Quick
      test_join_cross_product;
    Alcotest.test_case "unary of no sets raises" `Quick test_unary_empty_input;
    Alcotest.test_case "Kary_too_large trips on a tiny limit" `Quick
      test_kary_too_large;
    Alcotest.test_case "k-ary builder validation" `Quick test_kary_validation;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        qcheck_triejoin_matches_oracles;
        qcheck_unary_is_set_intersection;
        qcheck_kary_quotient_equals_naive;
        qcheck_k2_is_binary_build;
        qcheck_sampled_kary_deterministic;
        qcheck_sampled_k2_matches_binary;
      ]
