(* Join paths (§7 extension): the generalized certainty characterizations
   cross-checked against brute force over predicate vectors, and
   end-to-end inference on chains of three relations. *)

module Bits = Jqi_util.Bits
module Prng = Jqi_util.Prng
module Value = Jqi_relational.Value
module Schema = Jqi_relational.Schema
module Tuple = Jqi_relational.Tuple
module Relation = Jqi_relational.Relation
module Omega = Jqi_core.Omega
module Sample = Jqi_core.Sample
module Path = Jqi_joinpath.Path

let rel name cols rows =
  Relation.of_list ~name ~schema:(Schema.of_names ~ty:Value.TInt cols)
    (List.map Tuple.ints rows)

(* A three-relation chain: customers → orders → items, small enough to
   brute-force the predicate-vector version space. *)
let r1 = rel "c" [ "cid" ] [ [ 1 ]; [ 2 ]; [ 3 ] ]
let r2 = rel "o" [ "ocid"; "oid" ] [ [ 1; 10 ]; [ 2; 20 ]; [ 3; 10 ] ]
let r3 = rel "i" [ "ioid" ] [ [ 10 ]; [ 20 ] ]

let path = Path.build [ r1; r2; r3 ]

let goal =
  [|
    Omega.of_pairs (Omega.create ~n:1 ~m:2 ()) [ (0, 0) ] (* cid = ocid *);
    Omega.of_pairs (Omega.create ~n:2 ~m:1 ()) [ (1, 0) ] (* oid = ioid *);
  |]

let test_build_shape () =
  (* 3·3·2 = 18 path tuples, quotiented into signature-vector combos. *)
  let total = Array.fold_left (fun a c -> a + c.Path.count) 0 path.combos in
  Alcotest.(check int) "18 path tuples" 18 total;
  Alcotest.(check int) "two edges" 2 (Path.n_edges path);
  Alcotest.(check bool) "fewer combos than tuples" true
    (Path.n_combos path <= 18)

let test_build_validation () =
  Alcotest.(check bool) "single relation rejected" true
    (try ignore (Path.build [ r1 ]); false with Invalid_argument _ -> true);
  let empty = rel "e" [ "x" ] [] in
  Alcotest.(check bool) "empty relation rejected" true
    (try ignore (Path.build [ r1; empty ]); false with Invalid_argument _ -> true)

let test_selects () =
  (* The goal selects exactly the FK-consistent path tuples:
     (1,(1,10),10), (2,(2,20),20), (3,(3,10),10). *)
  let selected =
    Array.to_list path.combos
    |> List.filter (fun c -> Path.selects goal c.Path.signatures)
    |> List.fold_left (fun acc c -> acc + c.Path.count) 0
  in
  Alcotest.(check int) "three selected path tuples" 3 selected

(* Brute force: enumerate all consistent predicate vectors and compare
   Cert± with the implementation's polynomial tests. *)
let all_vectors path =
  let per_edge =
    Array.to_list (Array.map Omega.all_predicates path.Path.omegas)
  in
  List.fold_left
    (fun acc preds ->
      List.concat_map (fun v -> List.map (fun p -> v @ [ p ]) preds) acc)
    [ [] ] per_edge
  |> List.map Array.of_list

let test_certainty_vs_brute () =
  let prng = Prng.create 3 in
  let vectors = all_vectors path in
  for _ = 1 to 60 do
    (* Random consistent sample, built by labeling random combos with a
       random goal's labels. *)
    let goal = Prng.pick_list prng vectors in
    let st = Path.create path in
    for _ = 1 to 1 + Prng.int prng 3 do
      let i = Prng.int prng (Path.n_combos path) in
      let lbl =
        if Path.selects goal (Path.combo path i).Path.signatures then
          Sample.Positive
        else Sample.Negative
      in
      match Path.certain_label st i with
      | Some _ -> ()  (* already decided; skip to keep the sample consistent *)
      | None -> Path.label st i lbl
    done;
    (* Version space by brute force. *)
    let consistent =
      List.filter
        (fun v ->
          List.for_all
            (fun (i, lbl) ->
              let sel = Path.selects v (Path.combo path i).Path.signatures in
              match lbl with
              | Sample.Positive -> sel
              | Sample.Negative -> not sel)
            st.Path.history)
        vectors
    in
    Alcotest.(check bool) "version space nonempty" true (consistent <> []);
    for i = 0 to Path.n_combos path - 1 do
      let sigs = (Path.combo path i).Path.signatures in
      let by_def =
        if List.for_all (fun v -> Path.selects v sigs) consistent then
          Some Sample.Positive
        else if List.for_all (fun v -> not (Path.selects v sigs)) consistent
        then Some Sample.Negative
        else None
      in
      Alcotest.(check (option Fixtures.label_testable))
        (Printf.sprintf "combo %d" i)
        by_def (Path.certain_label st i)
    done
  done

let strategies () = [ Path.bu; Path.td; Path.l1s; Path.rnd (Prng.create 5) ]

let test_only_informative_proposed () =
  List.iter
    (fun strategy ->
      let st = Path.create path in
      let rec go n =
        if n > 30 then Alcotest.fail "no convergence"
        else
          match strategy.Path.choose st with
          | None -> ()
          | Some i ->
              Alcotest.(check bool)
                (strategy.Path.name ^ " proposes informative")
                true (Path.informative st i);
              Path.label st i
                (if Path.selects goal (Path.combo path i).Path.signatures then
                   Sample.Positive
                 else Sample.Negative);
              go (n + 1)
      in
      go 0)
    (strategies ())

let test_inference_recovers_goal () =
  List.iter
    (fun strategy ->
      let result = Path.run path strategy (Path.honest_oracle ~goal) in
      Alcotest.(check bool)
        (strategy.Path.name ^ " equivalent")
        true
        (Path.verified path ~goal result);
      Alcotest.(check bool) "positive interactions" true (result.n_interactions > 0))
    (strategies ())

let test_inference_random_goals () =
  let prng = Prng.create 11 in
  let vectors = all_vectors path in
  for _ = 1 to 40 do
    let goal = Prng.pick_list prng vectors in
    List.iter
      (fun strategy ->
        let result = Path.run path strategy (Path.honest_oracle ~goal) in
        Alcotest.(check bool)
          (strategy.Path.name ^ " equivalent on random goal")
          true
          (Path.verified path ~goal result))
      (strategies ())
  done

let test_inconsistent_labeling_raises () =
  let st = Path.create path in
  (* Find a combo, label it positive; any combo that becomes certain
     negative must reject a positive label. *)
  Path.label st 0 Sample.Positive;
  match
    List.find_opt
      (fun i -> Path.certain_label st i = Some Sample.Negative)
      (List.init (Path.n_combos path) Fun.id)
  with
  | None -> ()  (* nothing certain-negative on this instance; fine *)
  | Some i ->
      Alcotest.check_raises "contradiction raises"
        (Path.Inconsistent { combo_id = i; label = Sample.Positive })
        (fun () -> Path.label st i Sample.Positive)

let test_budget () =
  let result =
    Path.run ~max_interactions:1 path Path.bu (Path.honest_oracle ~goal)
  in
  Alcotest.(check int) "budget respected" 1 result.n_interactions

let test_longer_chain () =
  (* Four relations. *)
  let r4 = rel "w" [ "wid" ] [ [ 10 ]; [ 99 ] ] in
  let path4 = Path.build [ r1; r2; r3; r4 ] in
  Alcotest.(check int) "three edges" 3 (Path.n_edges path4);
  let goal4 =
    [|
      Omega.of_pairs path4.omegas.(0) [ (0, 0) ];
      Omega.of_pairs path4.omegas.(1) [ (1, 0) ];
      Omega.of_pairs path4.omegas.(2) [ (0, 0) ];
    |]
  in
  List.iter
    (fun strategy ->
      let result = Path.run path4 strategy (Path.honest_oracle ~goal:goal4) in
      Alcotest.(check bool)
        (strategy.Path.name ^ " four-relation chain")
        true
        (Path.verified path4 ~goal:goal4 result))
    (strategies ())

let suite =
  [
    Alcotest.test_case "build shape" `Quick test_build_shape;
    Alcotest.test_case "build validation" `Quick test_build_validation;
    Alcotest.test_case "path selection" `Quick test_selects;
    Alcotest.test_case "certainty vs brute force" `Quick test_certainty_vs_brute;
    Alcotest.test_case "only informative proposed" `Quick test_only_informative_proposed;
    Alcotest.test_case "inference recovers FK chain" `Quick test_inference_recovers_goal;
    Alcotest.test_case "inference on random goals" `Quick test_inference_random_goals;
    Alcotest.test_case "inconsistent labeling raises" `Quick test_inconsistent_labeling_raises;
    Alcotest.test_case "interaction budget" `Quick test_budget;
    Alcotest.test_case "four-relation chain" `Quick test_longer_chain;
  ]
