(* JSON substrate and session persistence. *)

open Fixtures
module Json = Jqi_util.Json
module Universe = Jqi_core.Universe
module State = Jqi_core.State
module Sample = Jqi_core.Sample
module Session = Jqi_core.Session

let json_testable =
  Alcotest.testable
    (fun ppf j -> Fmt.string ppf (Json.to_string j))
    ( = )

let roundtrip j = Json.of_string (Json.to_string j)

let test_scalars () =
  List.iter
    (fun j -> Alcotest.check json_testable "roundtrip" j (roundtrip j))
    [
      Json.Null; Json.Bool true; Json.Bool false; Json.int 0; Json.int (-42);
      Json.Num 2.5; Json.Str ""; Json.Str "plain";
      Json.Str "esc \" \\ \n \t chars";
    ]

let test_structures () =
  let j =
    Json.Obj
      [
        ("list", Json.List [ Json.int 1; Json.Str "two"; Json.Null ]);
        ("nested", Json.Obj [ ("k", Json.List [ Json.Obj [] ]) ]);
        ("empty", Json.List []);
      ]
  in
  Alcotest.check json_testable "roundtrip" j (roundtrip j)

let test_parse_whitespace_and_escapes () =
  let j = Json.of_string " { \"a\" : [ 1 , true , \"x\\u0041\" ] } " in
  match Json.member "a" j with
  | Some (Json.List [ n; Json.Bool true; Json.Str "xA" ]) ->
      Alcotest.(check (option int)) "int" (Some 1) (Json.to_int n)
  | _ -> Alcotest.fail "parse shape wrong"

let test_parse_errors () =
  List.iter
    (fun s ->
      Alcotest.(check bool) ("rejects " ^ s) true
        (try ignore (Json.of_string s); false with Json.Parse_error _ -> true))
    [ ""; "{"; "[1,"; "\"open"; "{\"a\" 1}"; "nul"; "[] trailing"; "{\"a\":}" ]

let test_member_to_int () =
  let j = Json.Obj [ ("x", Json.int 3); ("y", Json.Num 2.5) ] in
  Alcotest.(check (option int)) "x" (Some 3)
    (Option.bind (Json.member "x" j) Json.to_int);
  Alcotest.(check (option int)) "y not integral" None
    (Option.bind (Json.member "y" j) Json.to_int);
  Alcotest.(check bool) "missing" true (Json.member "z" j = None)

(* ------------------------------ sessions --------------------------- *)

let session_state () =
  let st = State.create universe0 in
  State.label st (class0 (2, 2)) Sample.Positive;
  State.label st (class0 (1, 3)) Sample.Negative;
  st

let test_session_roundtrip () =
  let st = session_state () in
  let reloaded = Session.of_json universe0 (Session.to_json universe0 st) in
  Alcotest.check bits_testable "same T(S+)" (State.tpos st) (State.tpos reloaded);
  Alcotest.(check int) "same interactions" (State.n_interactions st)
    (State.n_interactions reloaded);
  Alcotest.(check (list int)) "same informative set"
    (State.informative_classes st)
    (State.informative_classes reloaded)

let test_session_file_roundtrip () =
  let st = session_state () in
  let path = Filename.temp_file "jqi_session" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Session.save path universe0 st;
      let reloaded = Session.load path universe0 in
      Alcotest.check bits_testable "same T(S+)" (State.tpos st)
        (State.tpos reloaded))

let test_session_resume_and_finish () =
  (* Save mid-session, reload, finish the inference: the final answer must
     match an uninterrupted run. *)
  let goal = pred0 [ (0, 0); (1, 2) ] in
  let oracle = Jqi_core.Oracle.honest ~goal in
  let full =
    Jqi_core.Inference.run universe0 Jqi_core.Strategy.bu oracle
  in
  let st = State.create universe0 in
  (* Two BU steps, then a save/load, then continue with BU. *)
  let step st =
    match Jqi_core.Strategy.choose Jqi_core.Strategy.bu st with
    | Some c -> State.label st c (Jqi_core.Oracle.label oracle universe0 c)
    | None -> ()
  in
  step st;
  step st;
  let resumed = Session.of_json universe0 (Session.to_json universe0 st) in
  let rec finish () =
    match Jqi_core.Strategy.choose Jqi_core.Strategy.bu resumed with
    | Some c ->
        State.label resumed c (Jqi_core.Oracle.label oracle universe0 c);
        finish ()
    | None -> ()
  in
  finish ();
  Alcotest.check bits_testable "same final predicate" full.predicate
    (State.inferred resumed)

let test_session_rejects_garbage () =
  let bad json =
    Alcotest.(check bool) "rejected" true
      (try ignore (Session.of_json universe0 json); false
       with Session.Corrupt _ -> true)
  in
  bad (Json.Obj []);
  bad (Json.Obj [ ("version", Json.int 99); ("examples", Json.List []) ]);
  bad
    (Json.Obj
       [
         ("version", Json.int 1);
         ( "examples",
           Json.List
             [ Json.Obj [ ("r", Json.int 99); ("p", Json.int 0); ("label", Json.Str "+") ] ] );
       ]);
  (* Inconsistent labels: the empty-signature tuple negative after the same
     tuple positive. *)
  bad
    (Json.Obj
       [
         ("version", Json.int 1);
         ( "examples",
           Json.List
             [
               Json.Obj [ ("r", Json.int 2); ("p", Json.int 0); ("label", Json.Str "+") ];
               Json.Obj [ ("r", Json.int 2); ("p", Json.int 0); ("label", Json.Str "-") ];
             ] );
       ])

let test_session_implied_labels_ok () =
  (* A file may contain examples that are implied by earlier ones (e.g. it
     was written by a different strategy): loading is idempotent for
     them. *)
  let st = State.create universe0 in
  State.label st (class0 (3, 1)) Sample.Positive;  (* ∅ positive: all certain *)
  let json = Session.to_json universe0 st in
  (* Append an implied example by rebuilding the JSON with a duplicate. *)
  let with_dup =
    match json with
    | Json.Obj [ (v, ver); (e, Json.List exs) ] ->
        Json.Obj [ (v, ver); (e, Json.List (exs @ exs)) ]
    | _ -> Alcotest.fail "unexpected shape"
  in
  let reloaded = Session.of_json universe0 with_dup in
  Alcotest.check bits_testable "same predicate" (State.tpos st)
    (State.tpos reloaded)

(* --------------------------- schema v2 ----------------------------- *)

let corrupt_message f =
  try
    ignore (f ());
    Alcotest.fail "expected Session.Corrupt"
  with Session.Corrupt msg -> msg

let contains ~needle haystack =
  let n = String.length haystack and nl = String.length needle in
  let rec go i =
    i + nl <= n && (String.sub haystack i nl = needle || go (i + 1))
  in
  go 0

let test_session_v2_roundtrip () =
  let st = session_state () in
  (* Freeze mid-question: the pending class is any still-informative one. *)
  let cls =
    match State.informative_classes st with
    | c :: _ -> c
    | [] -> Alcotest.fail "fixture state must have informative classes"
  in
  let pending = (Universe.cls universe0 cls).Universe.rep in
  let json = Session.to_json ~strategy:"TD" ~pending universe0 st in
  let loaded = Session.of_json_full universe0 json in
  Alcotest.(check (option string)) "strategy persisted" (Some "TD")
    loaded.Session.strategy;
  Alcotest.(check (option (array int))) "pending persisted" (Some pending)
    loaded.Session.pending;
  Alcotest.check bits_testable "same T(S+)" (State.tpos st)
    (State.tpos loaded.Session.state);
  Alcotest.(check (option int)) "pending maps back to its class" (Some cls)
    (Session.pending_class universe0 loaded.Session.state
       loaded.Session.pending)

let test_session_v1_fixture_loads () =
  (* The checked-in v1 file: examples only — metadata defaults to None. *)
  let loaded = Session.load_full "data/session_v1.json" universe0 in
  Alcotest.(check (option string)) "no strategy in v1" None
    loaded.Session.strategy;
  Alcotest.(check (option (array int))) "no pending in v1" None
    loaded.Session.pending;
  let st = session_state () in
  Alcotest.check bits_testable "replays to the same T(S+)" (State.tpos st)
    (State.tpos loaded.Session.state);
  Alcotest.(check int) "both answers replayed" 2
    (State.n_interactions loaded.Session.state)

let test_session_version_errors () =
  let msg =
    corrupt_message (fun () ->
        Session.of_json universe0
          (Json.Obj
             [ ("version", Json.int 4); ("examples", Json.List []) ]))
  in
  Alcotest.(check bool) "names the bad version" true
    (contains ~needle:"unsupported session version 4" msg);
  Alcotest.(check bool) "names the supported range" true
    (contains ~needle:"1-3" msg);
  let missing = corrupt_message (fun () -> Session.of_json universe0 (Json.Obj [])) in
  Alcotest.(check bool) "missing version named" true
    (contains ~needle:"version" missing)

let test_session_v2_field_validation () =
  let base extra =
    Json.Obj
      (( "version", Json.int 2 )
      :: extra
      @ [ ("examples", Json.List []) ])
  in
  (* Null metadata is tolerated (absent), wrong types are not. *)
  let loaded =
    Session.of_json_full universe0
      (base [ ("strategy", Json.Null); ("pending", Json.Null) ])
  in
  Alcotest.(check (option string)) "null strategy tolerated" None
    loaded.Session.strategy;
  ignore
    (corrupt_message (fun () ->
         Session.of_json_full universe0 (base [ ("strategy", Json.int 5) ])));
  ignore
    (corrupt_message (fun () ->
         Session.of_json_full universe0
           (base [ ("pending", Json.Obj [ ("r", Json.int 0) ]) ])));
  ignore
    (corrupt_message (fun () ->
         Session.of_json_full universe0
           (base
              [ ("pending", Json.Obj [ ("r", Json.int 99); ("p", Json.int 0) ]) ])))

let test_session_stale_pending_dropped () =
  (* A frozen question whose class has since become certain is not
     re-presented. *)
  let st = session_state () in
  let answered = (Universe.cls universe0 (class0 (2, 2))).Universe.rep in
  Alcotest.(check (option int)) "certain class not re-presented" None
    (Session.pending_class universe0 st (Some answered));
  Alcotest.(check (option int)) "no pending, no class" None
    (Session.pending_class universe0 st None)

let test_session_survives_data_growth () =
  (* Appending rows to the relations keeps old row indexes and signatures
     valid, so a saved session resumes against the grown instance: the old
     labels replay, and tuples that only exist in the new data become
     fresh informative classes. *)
  let st = session_state () in
  let json = Session.to_json universe0 st in
  let grown_r =
    Jqi_relational.Relation.with_rows Fixtures.r0
      (Array.append
         (Jqi_relational.Relation.rows Fixtures.r0)
         [| Jqi_relational.Tuple.ints [ 7; 7 ] |])
  in
  let grown = Universe.build grown_r Fixtures.p0 in
  let resumed = Session.of_json grown json in
  Alcotest.check bits_testable "same T(S+) on grown instance"
    (State.tpos st) (State.tpos resumed);
  (* The new row (7,7) matches nothing, so its pairs share the ∅ signature
     with (t3,t'1); the grown universe keeps 12 classes but more tuples. *)
  Alcotest.(check int) "more tuples" 15 (Universe.total_tuples grown)

let suite =
  [
    Alcotest.test_case "session survives data growth" `Quick test_session_survives_data_growth;
    Alcotest.test_case "scalar roundtrips" `Quick test_scalars;
    Alcotest.test_case "structure roundtrips" `Quick test_structures;
    Alcotest.test_case "whitespace and escapes" `Quick test_parse_whitespace_and_escapes;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "member/to_int" `Quick test_member_to_int;
    Alcotest.test_case "session roundtrip" `Quick test_session_roundtrip;
    Alcotest.test_case "session file roundtrip" `Quick test_session_file_roundtrip;
    Alcotest.test_case "session resume and finish" `Quick test_session_resume_and_finish;
    Alcotest.test_case "session rejects garbage" `Quick test_session_rejects_garbage;
    Alcotest.test_case "session implied labels" `Quick test_session_implied_labels_ok;
    Alcotest.test_case "session v2 roundtrip" `Quick test_session_v2_roundtrip;
    Alcotest.test_case "session v1 fixture loads" `Quick test_session_v1_fixture_loads;
    Alcotest.test_case "session version errors" `Quick test_session_version_errors;
    Alcotest.test_case "session v2 field validation" `Quick test_session_v2_field_validation;
    Alcotest.test_case "session stale pending dropped" `Quick test_session_stale_pending_dropped;
  ]
