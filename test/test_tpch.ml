(* TPC-H-style generator: schema shapes, key/FK integrity, determinism. *)

module Value = Jqi_relational.Value
module Schema = Jqi_relational.Schema
module Tuple = Jqi_relational.Tuple
module Relation = Jqi_relational.Relation
module Tpch = Jqi_tpch.Tpch
module Universe = Jqi_core.Universe
module Omega = Jqi_core.Omega

let db = Tpch.generate ~seed:1 ~scale:1 ()

let col rel name row = Tuple.get row (Schema.index_of_exn (Relation.schema rel) name)

let int_col rel name row =
  match col rel name row with Value.Int i -> i | _ -> Alcotest.fail "not an int"

let test_arities () =
  Alcotest.(check int) "part 9 cols" 9 (Relation.arity db.part);
  Alcotest.(check int) "supplier 7 cols" 7 (Relation.arity db.supplier);
  Alcotest.(check int) "partsupp 5 cols" 5 (Relation.arity db.partsupp);
  Alcotest.(check int) "customer 8 cols" 8 (Relation.arity db.customer);
  Alcotest.(check int) "orders 9 cols" 9 (Relation.arity db.orders);
  Alcotest.(check int) "lineitem 16 cols" 16 (Relation.arity db.lineitem)

let test_row_counts_scale () =
  let db2 = Tpch.generate ~seed:1 ~scale:2 () in
  Alcotest.(check int) "part doubles" (2 * Relation.cardinality db.part)
    (Relation.cardinality db2.part);
  Alcotest.(check int) "lineitem doubles" (2 * Relation.cardinality db.lineitem)
    (Relation.cardinality db2.lineitem)

let keys rel name =
  List.map (int_col rel name) (Relation.to_list rel)

let test_primary_keys_unique () =
  List.iter
    (fun (rel, key) ->
      let ks = keys rel key in
      Alcotest.(check int)
        (Printf.sprintf "%s.%s unique" (Relation.name rel) key)
        (List.length ks)
        (List.length (List.sort_uniq compare ks)))
    [
      (db.part, "p_partkey");
      (db.supplier, "s_suppkey");
      (db.customer, "c_custkey");
      (db.orders, "o_orderkey");
    ]

let test_partsupp_pk_and_fks () =
  let pairs =
    List.map
      (fun row -> (int_col db.partsupp "ps_partkey" row, int_col db.partsupp "ps_suppkey" row))
      (Relation.to_list db.partsupp)
  in
  Alcotest.(check int) "composite key unique" (List.length pairs)
    (List.length (List.sort_uniq compare pairs));
  let parts = keys db.part "p_partkey" and supps = keys db.supplier "s_suppkey" in
  List.iter
    (fun (pk, sk) ->
      Alcotest.(check bool) "partkey FK" true (List.mem pk parts);
      Alcotest.(check bool) "suppkey FK" true (List.mem sk supps))
    pairs

let test_orders_lineitem_fks () =
  let orderkeys = keys db.orders "o_orderkey" in
  let custkeys = keys db.customer "c_custkey" in
  List.iter
    (fun row ->
      Alcotest.(check bool) "o_custkey FK" true
        (List.mem (int_col db.orders "o_custkey" row) custkeys))
    (Relation.to_list db.orders);
  let ps_pairs =
    List.map
      (fun row -> (int_col db.partsupp "ps_partkey" row, int_col db.partsupp "ps_suppkey" row))
      (Relation.to_list db.partsupp)
  in
  List.iter
    (fun row ->
      Alcotest.(check bool) "l_orderkey FK" true
        (List.mem (int_col db.lineitem "l_orderkey" row) orderkeys);
      (* Join 5's composite FK: (l_partkey, l_suppkey) ∈ partsupp. *)
      Alcotest.(check bool) "(l_partkey,l_suppkey) FK" true
        (List.mem
           ( int_col db.lineitem "l_partkey" row,
             int_col db.lineitem "l_suppkey" row )
           ps_pairs))
    (Relation.to_list db.lineitem)

let test_deterministic () =
  let a = Tpch.generate ~seed:9 ~scale:1 () and b = Tpch.generate ~seed:9 ~scale:1 () in
  Alcotest.(check bool) "same data" true (Relation.equal_contents a.lineitem b.lineitem);
  let c = Tpch.generate ~seed:10 ~scale:1 () in
  Alcotest.(check bool) "different seed differs" false
    (Relation.equal_contents a.lineitem c.lineitem)

let test_joins_metadata () =
  let joins = Tpch.joins db in
  Alcotest.(check int) "five joins" 5 (List.length joins);
  (* Each goal join's attribute names are disjoint between the two sides
     (the paper's standing assumption), and the goal predicate resolves. *)
  List.iter
    (fun (j : Tpch.goal_join) ->
      let rn = Schema.names (Relation.schema j.r) in
      let pn = Schema.names (Relation.schema j.p) in
      Alcotest.(check bool)
        (j.label ^ " disjoint attrs") true
        (List.for_all (fun n -> not (List.mem n pn)) rn);
      let omega = Omega.of_schemas (Relation.schema j.r) (Relation.schema j.p) in
      Alcotest.(check int)
        (j.label ^ " goal size")
        (List.length j.pairs)
        (Jqi_util.Bits.cardinal (Tpch.goal_predicate omega j)))
    joins

(* The paper's premise: the goal FK join must actually be the most specific
   consistent predicate discoverable from the data — i.e., inference
   recovers something instance-equivalent (checked end-to-end elsewhere);
   here we check the FK join selects exactly the FK-matching pairs. *)
let test_goal_join_is_fk_join () =
  let join1 = List.hd (Tpch.joins db) in
  let result =
    Jqi_relational.Join.equijoin join1.r join1.p
      (Jqi_relational.Join.predicate_of_names join1.r join1.p join1.pairs)
  in
  (* Every partsupp row pairs with exactly one part: |result| = |partsupp|. *)
  Alcotest.(check int) "one part per partsupp"
    (Relation.cardinality db.partsupp)
    (Relation.cardinality result)

(* --------------------- k-ary inference pin ------------------------ *)

(* End-to-end over the 3-table natural-key chain
   part ⋈ partsupp ⋈ supplier (projected to the join-relevant columns so
   the quotient stays small): BU, TD and L2S must all converge to a
   predicate instance-equivalent to the FK chain, with bit-identical
   traces whichever k-ary universe builder produced the quotient — the
   in-process counterpart of `jqinfer infer --relations ... --universe`. *)
let test_kary_chain_inference () =
  let part = Jqi_relational.Algebra.project db.part [ "p_partkey"; "p_size" ] in
  let partsupp =
    Jqi_relational.Algebra.project db.partsupp [ "ps_partkey"; "ps_suppkey" ]
  in
  let supplier =
    Jqi_relational.Algebra.project db.supplier [ "s_suppkey"; "s_nationkey" ]
  in
  let rels = [ part; partsupp; supplier ] in
  let u_quot = Universe.build_kary rels in
  let u_naive = Universe.build_kary_naive rels in
  let goal u =
    Omega.of_names_kary (Universe.omega u)
      [
        ("part.p_partkey", "partsupp.ps_partkey");
        ("partsupp.ps_suppkey", "supplier.s_suppkey");
      ]
  in
  let label_equal a b =
    match (a, b) with
    | Jqi_core.Sample.Positive, Jqi_core.Sample.Positive
    | Jqi_core.Sample.Negative, Jqi_core.Sample.Negative ->
        true
    | Jqi_core.Sample.Positive, Jqi_core.Sample.Negative
    | Jqi_core.Sample.Negative, Jqi_core.Sample.Positive ->
        false
  in
  List.iter
    (fun (name, strategy) ->
      let run u =
        Jqi_core.Inference.run u strategy
          (Jqi_core.Oracle.honest ~goal:(goal u))
      in
      let a = run u_quot and b = run u_naive in
      Alcotest.(check bool)
        (name ^ " converges on the quotient universe")
        true
        (Jqi_core.Inference.verified u_quot ~goal:(goal u_quot) a);
      Alcotest.(check bool)
        (name ^ " converges on the naive universe")
        true
        (Jqi_core.Inference.verified u_naive ~goal:(goal u_naive) b);
      Alcotest.(check bool)
        (name ^ " predicates identical across builders")
        true
        (Jqi_util.Bits.equal a.Jqi_core.Inference.predicate
           b.Jqi_core.Inference.predicate);
      Alcotest.(check bool)
        (name ^ " traces identical across builders")
        true
        (List.equal
           (fun (c1, l1) (c2, l2) -> Int.equal c1 c2 && label_equal l1 l2)
           a.Jqi_core.Inference.steps b.Jqi_core.Inference.steps))
    [ ("bu", Jqi_core.Strategy.bu); ("td", Jqi_core.Strategy.td);
      ("l2s", Jqi_core.Strategy.lks 2) ]

let suite =
  [
    Alcotest.test_case "table arities" `Quick test_arities;
    Alcotest.test_case "row counts scale" `Quick test_row_counts_scale;
    Alcotest.test_case "primary keys unique" `Quick test_primary_keys_unique;
    Alcotest.test_case "partsupp pk and fks" `Quick test_partsupp_pk_and_fks;
    Alcotest.test_case "orders/lineitem fks" `Quick test_orders_lineitem_fks;
    Alcotest.test_case "deterministic by seed" `Quick test_deterministic;
    Alcotest.test_case "goal joins metadata" `Quick test_joins_metadata;
    Alcotest.test_case "goal join is the FK join" `Quick test_goal_join_is_fk_join;
    Alcotest.test_case "3-table k-ary chain inference pin" `Quick
      test_kary_chain_inference;
  ]
