let () =
  Alcotest.run "jqi"
    [
      ("bits", Test_bits.suite);
      ("prng", Test_prng.suite);
      ("util", Test_util.suite);
      ("value", Test_value.suite);
      ("schema", Test_schema.suite);
      ("relation", Test_relation.suite);
      ("algebra-props", Test_algebra_props.suite);
      ("csv", Test_csv.suite);
      ("join", Test_join.suite);
      ("tsig", Test_tsig.suite);
      ("sample", Test_sample.suite);
      ("state", Test_state.suite);
      ("entropy", Test_entropy.suite);
      ("sat", Test_sat.suite);
      ("semijoin", Test_semijoin.suite);
      ("semijoin-ext", Test_semijoin_ext.suite);
      ("omega", Test_omega.suite);
      ("universe", Test_universe.suite);
      ("lattice", Test_lattice.suite);
      ("strategy", Test_strategy.suite);
      ("inference", Test_inference.suite);
      ("minimax", Test_minimax.suite);
      ("lookahead", Test_lookahead.suite);
      ("tpch", Test_tpch.suite);
      ("synth", Test_synth.suite);
      ("experiments", Test_experiments.suite);
      ("sql", Test_sql.suite);
      ("joinpath", Test_joinpath.suite);
      ("extensions", Test_extensions.suite);
      ("fuzz", Test_fuzz.suite);
      ("json", Test_json.suite);
      ("certificate", Test_certificate.suite);
      ("misc", Test_misc.suite);
      ("analysis", Test_analysis.suite);
    ]
