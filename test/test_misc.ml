(* Coverage for smaller public items: DIMACS file I/O, model counting,
   oracle metadata, result pretty-printers, relation renaming. *)

module Cnf = Jqi_sat.Cnf
module Dimacs = Jqi_sat.Dimacs
module Sat_brute = Jqi_sat.Brute
module Relation = Jqi_relational.Relation
module Oracle = Jqi_core.Oracle
module Strategy = Jqi_core.Strategy
module Inference = Jqi_core.Inference
module Universe = Jqi_core.Universe
open Fixtures

let test_dimacs_file_io () =
  let f = Cnf.create ~nvars:3 [ [| 1; -2 |]; [| 2; 3 |]; [| -3 |] ] in
  let path = Filename.temp_file "jqi" ".cnf" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Dimacs.write_file path f;
      let f' = Dimacs.read_file path in
      Alcotest.(check int) "nvars" (Cnf.nvars f) (Cnf.nvars f');
      Alcotest.(check (list (array int))) "clauses" (Cnf.clauses f) (Cnf.clauses f'))

let test_count_models () =
  (* x1 ∨ x2 over 2 variables: 3 models. *)
  let f = Cnf.create ~nvars:2 [ [| 1; 2 |] ] in
  Alcotest.(check int) "models" 3 (Sat_brute.count_models f);
  (* Every model satisfies. *)
  List.iter
    (fun m -> Alcotest.(check bool) "model valid" true (Cnf.satisfied f m))
    (Sat_brute.all_models f);
  Alcotest.(check bool) "width guard" true
    (try ignore (Sat_brute.is_sat (Cnf.create ~nvars:30 [ [| 1 |] ])); false
     with Invalid_argument _ -> true)

let test_oracle_metadata () =
  let goal = pred0 [ (0, 2) ] in
  Alcotest.(check string) "honest name" "honest" (Oracle.name (Oracle.honest ~goal));
  let noisy =
    Oracle.noisy (Jqi_util.Prng.create 1) ~error_rate:0.25 (Oracle.honest ~goal)
  in
  Alcotest.(check bool) "noisy name mentions rate" true
    (let n = Oracle.name noisy in
     String.length n > 5 && String.sub n 0 5 = "noisy")

let test_inference_pp () =
  let goal = pred0 [ (0, 2) ] in
  let result = Inference.run universe0 Strategy.td (Oracle.honest ~goal) in
  let text = Fmt.str "%a" (Inference.pp omega0) result in
  Alcotest.(check bool) "mentions strategy" true
    (let needle = "TD" in
     let n = String.length text and nl = String.length needle in
     let rec go i = i + nl <= n && (String.sub text i nl = needle || go (i + 1)) in
     go 0)

let test_with_name () =
  let renamed = Relation.with_name r0 "renamed" in
  Alcotest.(check string) "name" "renamed" (Relation.name renamed);
  Alcotest.(check int) "rows preserved" (Relation.cardinality r0)
    (Relation.cardinality renamed)

let test_timer_time_only () =
  Alcotest.(check bool) "non-negative" true
    (Jqi_util.Timer.time_only (fun () -> ()) >= 0.)

let test_universe_find_class_missing () =
  Alcotest.(check bool) "absent signature" true
    (Universe.find_class universe0 (Jqi_core.Omega.full omega0) = None)

let test_tpch_counts_accessor () =
  let p, s, ps, c, o, l = Jqi_tpch.Tpch.counts ~scale:2 in
  List.iter
    (fun n -> Alcotest.(check bool) "positive" true (n > 0))
    [ p; s; ps; c; o; l ];
  Alcotest.(check bool) "lineitem is the big one" true (l >= p && l >= o)

let suite =
  [
    Alcotest.test_case "dimacs file io" `Quick test_dimacs_file_io;
    Alcotest.test_case "model counting" `Quick test_count_models;
    Alcotest.test_case "oracle metadata" `Quick test_oracle_metadata;
    Alcotest.test_case "inference pp" `Quick test_inference_pp;
    Alcotest.test_case "relation with_name" `Quick test_with_name;
    Alcotest.test_case "timer time_only" `Quick test_timer_time_only;
    Alcotest.test_case "find_class missing" `Quick test_universe_find_class_missing;
    Alcotest.test_case "tpch counts" `Quick test_tpch_counts_accessor;
  ]
