(* Differential suite for the out-of-core storage engine (jqi.storage).

   The contract under test is byte-identity: a relation pushed through a
   heap-file store must reproduce the in-memory relation exactly —
   fingerprints, rows, and the universes built over it (binary and
   k-ary, quotient and naive) class for class.  Alongside the
   differentials: heap-file round-trips (including reopen-from-disk),
   buffer-pool invariants under a random pin/unpin/allocate hammer
   (pinned frames survive eviction pressure; exhaustion raises rather
   than corrupts), and the disk B-tree against a sorted association
   model (duplicates preserved in insertion order across splits and
   reopens). *)

module Bits = Jqi_util.Bits
module Value = Jqi_relational.Value
module Schema = Jqi_relational.Schema
module Tuple = Jqi_relational.Tuple
module Relation = Jqi_relational.Relation
module Csv = Jqi_relational.Csv
module Universe = Jqi_core.Universe
module Page = Jqi_storage.Page
module Pager = Jqi_storage.Pager
module Buffer_pool = Jqi_storage.Buffer_pool
module Heap = Jqi_storage.Heap
module Btree = Jqi_storage.Btree
module Relstore = Jqi_storage.Relstore

let tmp_path suffix =
  let path = Filename.temp_file "jqi-test" suffix in
  at_exit (fun () -> try Sys.remove path with Sys_error _ -> ());
  path

(* ----------------------------- page codec ------------------------- *)

let test_page_codec () =
  let buf = Page.alloc 512 Page.Heap_data in
  Alcotest.(check bool) "kind" true (Page.has_kind buf Page.Heap_data);
  Page.set_u8 buf 100 0xAB;
  Page.set_u16 buf 101 0xBEEF;
  Page.set_u32 buf 103 0xDEADBEEF;
  Page.set_i64 buf 107 (-12345678901234L);
  Page.set_string buf ~off:115 "hello";
  Alcotest.(check int) "u8" 0xAB (Page.get_u8 buf 100);
  Alcotest.(check int) "u16" 0xBEEF (Page.get_u16 buf 101);
  Alcotest.(check int) "u32" 0xDEADBEEF (Page.get_u32 buf 103);
  Alcotest.(check int64) "i64" (-12345678901234L) (Page.get_i64 buf 107);
  Alcotest.(check string) "string" "hello"
    (Page.get_string buf ~off:115 ~len:5);
  Page.set_kind buf Page.Btree_leaf;
  Alcotest.(check bool) "rekind" true (Page.has_kind buf Page.Btree_leaf)

let test_pager_rejects_foreign () =
  let path = tmp_path ".bin" in
  let oc = open_out_bin path in
  output_string oc "not a pager file at all";
  close_out oc;
  Alcotest.(check bool) "bad magic raises Bad_file" true
    (match Pager.open_existing path with
    | exception Pager.Bad_file _ -> true
    | _ -> false)

(* ------------------------------ heap ------------------------------ *)

let gen_record =
  QCheck.Gen.(
    let* n = frequency [ (5, int_bound 40); (2, int_bound 400); (1, return 0) ] in
    map Bytes.unsafe_to_string (bytes_size (return n)))

let qcheck_heap_roundtrip =
  QCheck.Test.make ~name:"heap: append/get/iter/reopen byte-identity"
    ~count:60
    QCheck.(make Gen.(list_size (int_range 0 120) gen_record))
    (fun records ->
      let path = tmp_path ".jqh" in
      let h = Heap.create_file ~page_size:512 ~pool_frames:4 path in
      let rids = List.map (fun r -> Heap.append h r) records in
      let ok_get =
        List.for_all2 (fun rid r -> String.equal (Heap.get h rid) r)
          rids records
      in
      let seen = ref [] in
      Heap.iter h (fun rid r -> seen := (rid, r) :: !seen);
      let ok_iter =
        List.equal
          (fun (rid1, r1) (rid2, r2) -> rid1 = rid2 && String.equal r1 r2)
          (List.combine rids records)
          (List.rev !seen)
      in
      let ok_count = Heap.record_count h = List.length records in
      Heap.close h;
      (* Reopen from disk: the dir walk must rediscover everything. *)
      let h2 = Heap.open_file ~pool_frames:4 path in
      let ok_reopen =
        Heap.record_count h2 = List.length records
        && List.for_all2 (fun rid r -> String.equal (Heap.get h2 rid) r)
             rids records
      in
      (* Appends after reopen land after the existing records. *)
      let rid' = Heap.append h2 "after-reopen" in
      let ok_append = String.equal (Heap.get h2 rid') "after-reopen" in
      let ok_pins = Buffer_pool.pinned (Heap.pool h2) = 0 in
      Heap.close h2;
      ok_get && ok_iter && ok_count && ok_reopen && ok_append && ok_pins)

let test_heap_meta_roundtrip () =
  let path = tmp_path ".jqh" in
  let h = Heap.create_file ~page_size:512 path in
  Heap.set_meta h "some schema blob \x00\x01\xff";
  ignore (Heap.append h "row");
  Heap.close h;
  let h2 = Heap.open_file path in
  Alcotest.(check string) "meta" "some schema blob \x00\x01\xff" (Heap.meta h2);
  Heap.close h2

let test_heap_oversized_record () =
  let path = tmp_path ".jqh" in
  let h = Heap.create_file ~page_size:512 path in
  let too_big = String.make (Heap.max_record h + 1) 'x' in
  Alcotest.(check bool) "raises" true
    (match Heap.append h too_big with
    | exception Invalid_argument _ -> true
    | _ -> false);
  (* The store is still usable after the rejected append. *)
  let rid = Heap.append h (String.make (Heap.max_record h) 'y') in
  Alcotest.(check int) "max-size record survives" (Heap.max_record h)
    (String.length (Heap.get h rid));
  Heap.close h

(* --------------------------- buffer pool -------------------------- *)

(* Random pin/unpin/write/flush hammer against a shadow model of page
   contents.  The model writes a counter stamp into a fixed offset of
   each page through [with_page_rw]; at every read the stamp must match
   the model regardless of the eviction traffic in between. *)
let qcheck_pool_hammer =
  QCheck.Test.make ~name:"buffer pool: random ops match shadow model"
    ~count:40
    QCheck.(
      make
        Gen.(
          list_size (int_range 1 300)
            (pair (int_bound 11) (int_bound 99))))
    (fun ops ->
      let path = tmp_path ".jqp" in
      let pager = Pager.create ~page_size:512 path in
      let pool = Buffer_pool.create ~frames:3 pager in
      let n_pages = 12 in
      for _ = 1 to n_pages do
        ignore (Buffer_pool.allocate pool Page.Heap_data)
      done;
      let model = Array.make n_pages 0 in
      let ok = ref true in
      List.iter
        (fun (pid, stamp) ->
          (* Read-check then write the new stamp. *)
          Buffer_pool.with_page_rw pool pid (fun buf ->
              if Page.get_u16 buf 64 <> model.(pid) then ok := false;
              Page.set_u16 buf 64 stamp);
          model.(pid) <- stamp;
          if stamp mod 17 = 0 then Buffer_pool.flush pool)
        ops;
      (* Every page, including evicted-and-reloaded ones, must hold the
         model's last write. *)
      for pid = 0 to n_pages - 1 do
        Buffer_pool.with_page pool pid (fun buf ->
            if Page.get_u16 buf 64 <> model.(pid) then ok := false)
      done;
      let no_leak = Buffer_pool.pinned pool = 0 in
      let resident_bounded = Buffer_pool.resident pool <= 3 in
      Buffer_pool.close pool;
      (* Durability: reopen through a fresh pool and re-check. *)
      let pager2 = Pager.open_existing path in
      let pool2 = Buffer_pool.create ~frames:3 pager2 in
      for pid = 0 to n_pages - 1 do
        Buffer_pool.with_page pool2 pid (fun buf ->
            if Page.get_u16 buf 64 <> model.(pid) then ok := false)
      done;
      Buffer_pool.close pool2;
      !ok && no_leak && resident_bounded)

let test_pool_exhaustion () =
  let path = tmp_path ".jqp" in
  let pool = Buffer_pool.create ~frames:2 (Pager.create ~page_size:512 path) in
  for _ = 1 to 4 do
    ignore (Buffer_pool.allocate pool Page.Heap_data)
  done;
  let f0 = Buffer_pool.pin pool 0 in
  let f1 = Buffer_pool.pin pool 1 in
  Alcotest.(check bool) "third pin raises Exhausted" true
    (match Buffer_pool.pin pool 2 with
    | exception Buffer_pool.Exhausted n -> n = 2
    | _ -> false);
  (* Unpinning one frame frees a victim; the pool recovers. *)
  Buffer_pool.unpin pool f1;
  let f2 = Buffer_pool.pin pool 2 in
  Buffer_pool.unpin pool f2;
  Buffer_pool.unpin pool f0;
  Alcotest.(check int) "no pins leaked" 0 (Buffer_pool.pinned pool);
  Buffer_pool.close pool

let test_pinned_never_evicted () =
  let path = tmp_path ".jqp" in
  let pool = Buffer_pool.create ~frames:3 (Pager.create ~page_size:512 path) in
  for _ = 1 to 10 do
    ignore (Buffer_pool.allocate pool Page.Heap_data)
  done;
  Buffer_pool.flush pool;
  let f = Buffer_pool.pin pool 7 in
  Page.set_u16 (Buffer_pool.frame_buf f) 32 4242;
  (* Storm over every other page: 7 is pinned, so its frame must survive
     with the un-flushed write intact. *)
  for round = 1 to 3 do
    ignore round;
    for pid = 0 to 6 do
      Buffer_pool.with_page pool pid ignore
    done
  done;
  Alcotest.(check int) "pinned frame still maps page 7" 7
    (Buffer_pool.frame_page f);
  Alcotest.(check int) "pinned frame content intact" 4242
    (Page.get_u16 (Buffer_pool.frame_buf f) 32);
  Buffer_pool.unpin ~dirty:true pool f;
  Alcotest.(check int) "no pins leaked" 0 (Buffer_pool.pinned pool);
  Buffer_pool.close pool

let test_unpin_unpinned_rejected () =
  let path = tmp_path ".jqp" in
  let pool = Buffer_pool.create ~frames:2 (Pager.create ~page_size:512 path) in
  ignore (Buffer_pool.allocate pool Page.Heap_data);
  let f = Buffer_pool.pin pool 0 in
  Buffer_pool.unpin pool f;
  Alcotest.(check bool) "double unpin raises" true
    (match Buffer_pool.unpin pool f with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Buffer_pool.close pool

(* ------------------------- relstore differential ------------------ *)

(* Mixed-type cells: NULLs and NaNs (never interned), negative ints and
   floats with awkward bits, strings with separators and quotes. *)
let gen_cell =
  QCheck.Gen.(
    frequency
      [
        (5, map (fun i -> Value.Int (i - 3)) (int_bound 7));
        (2, return Value.Null);
        (1, map (fun b -> Value.Bool b) bool);
        (1, map (fun i -> Value.Float (float_of_int i /. 2.)) (int_bound 4));
        (1, return (Value.Float Float.nan));
        (1, return (Value.Float (-0.0)));
        (1, oneofl [ Value.Str "a"; Value.Str "b,c"; Value.Str "d\"e" ]);
      ])

let gen_rows =
  QCheck.Gen.(
    let row arity = map Tuple.of_list (list_repeat arity gen_cell) in
    let* arity = int_range 1 3 in
    let* dup = bool in
    if dup then
      let* pool = list_size (int_range 1 3) (row arity) in
      list_size (int_range 1 15) (oneofl pool)
    else list_size (int_range 1 12) (row arity))

let relation_of name prefix rows =
  let arity = Tuple.arity (List.hd rows) in
  Relation.of_list ~name
    ~schema:
      (Schema.of_names ~ty:Value.TInt
         (List.init arity (fun i -> Printf.sprintf "%s%d" prefix i)))
    rows

(* Copy [rel] into a paged store with a pool small enough to evict. *)
let paged_copy rel =
  let store =
    Relstore.of_relation ~page_size:512 ~pool_frames:3
      ~dest:(tmp_path ".jqh") rel
  in
  (store, Relstore.relation store)

let rows_equal r1 r2 =
  Relation.cardinality r1 = Relation.cardinality r2
  &&
  let ok = ref true in
  Relation.iteri
    (fun i row -> if not (Tuple.equal row (Relation.row r1 i)) then ok := false)
    r2;
  !ok

let qcheck_relstore_roundtrip =
  QCheck.Test.make ~name:"relstore: paged relation = source relation"
    ~count:120
    QCheck.(make gen_rows)
    (fun rows ->
      let rel = relation_of "r" "a" rows in
      let store, paged = paged_copy rel in
      let ok =
        rows_equal rel paged
        && String.equal (Relation.fingerprint rel) (Relation.fingerprint paged)
        && Relstore.row_count store = Relation.cardinality rel
        && Buffer_pool.pinned (Relstore.pool store) = 0
      in
      (* Reopen from disk: one streaming scan rebuilds the dictionary. *)
      let path = Relstore.path store in
      Relstore.close store;
      let store2 = Relstore.open_file ~pool_frames:3 path in
      let paged2 = Relstore.relation store2 in
      let ok_reopen =
        rows_equal rel paged2
        && String.equal (Relation.fingerprint rel)
             (Relation.fingerprint paged2)
        && Schema.equal (Relation.schema rel) (Relation.schema paged2)
      in
      Relstore.close store2;
      ok && ok_reopen)

let universes_agree u1 u2 =
  Int.equal (Universe.n_classes u1) (Universe.n_classes u2)
  && Int.equal (Universe.total_tuples u1) (Universe.total_tuples u2)
  && Float.equal (Universe.join_ratio u1) (Universe.join_ratio u2)
  &&
  let rec go i =
    i >= Universe.n_classes u1
    || Bits.equal (Universe.signature u1 i) (Universe.signature u2 i)
       && Int.equal (Universe.count u1 i) (Universe.count u2 i)
       && (Universe.cls u1 i).Universe.rep = (Universe.cls u2 i).Universe.rep
       && go (i + 1)
  in
  go 0

let qcheck_universe_backends_agree =
  QCheck.Test.make
    ~name:"universe: Paged = Mem = naive (quotient differential)" ~count:120
    QCheck.(make Gen.(pair gen_rows gen_rows))
    (fun (rrows, prows) ->
      let r = relation_of "r" "a" rrows and p = relation_of "p" "b" prows in
      let sr, pr = paged_copy r and sp, pp = paged_copy p in
      let mem_u = Universe.build_quotient r p in
      let paged_u = Universe.build_quotient pr pp in
      let naive_u = Universe.build_naive r p in
      let ok = universes_agree mem_u paged_u && universes_agree naive_u paged_u in
      let no_leak =
        Buffer_pool.pinned (Relstore.pool sr) = 0
        && Buffer_pool.pinned (Relstore.pool sp) = 0
      in
      Relstore.close sr;
      Relstore.close sp;
      ok && no_leak)

let qcheck_kary_backends_agree =
  QCheck.Test.make ~name:"universe: k-ary Paged = Mem" ~count:40
    QCheck.(make Gen.(triple gen_rows gen_rows gen_rows))
    (fun (arows, brows, crows) ->
      let rels =
        [
          relation_of "ra" "a" arows;
          relation_of "rb" "b" brows;
          relation_of "rc" "c" crows;
        ]
      in
      let stores_paged = List.map paged_copy rels in
      let mem_u = Universe.build_kary rels in
      let paged_u = Universe.build_kary (List.map snd stores_paged) in
      let ok = universes_agree mem_u paged_u in
      List.iter (fun (s, _) -> Relstore.close s) stores_paged;
      ok)

(* ----------------------- csv streaming import --------------------- *)

let qcheck_load_into_matches_load_relation =
  QCheck.Test.make
    ~name:"csv: streamed paged load = in-memory load (inferred schema)"
    ~count:60
    QCheck.(make gen_rows)
    (fun rows ->
      let rel = relation_of "r" "c" rows in
      let path = tmp_path ".csv" in
      Csv.save_relation path rel;
      let mem = Csv.load_relation ~name:"r" path in
      let paged =
        Relstore.load_csv_relation
          ~backend:(Relstore.Paged { frames = 3; dir = None })
          ~name:"r" path
      in
      Schema.equal (Relation.schema mem) (Relation.schema paged)
      && String.equal (Relation.fingerprint mem) (Relation.fingerprint paged))

let test_load_into_errors_match () =
  (* Ragged and empty inputs must fail with the same message as the
     in-memory loader, from the same record numbering. *)
  let path = tmp_path ".csv" in
  let oc = open_out path in
  output_string oc "a,b\n1,2\n3\n";
  close_out oc;
  let msg_of f = try ignore (f ()); "no error" with Invalid_argument m -> m in
  Alcotest.(check string) "ragged message"
    (msg_of (fun () -> Csv.load_relation ~name:"r" path))
    (msg_of (fun () ->
         Relstore.load_csv ~dest:(tmp_path ".jqh") ~name:"r" path));
  let empty = tmp_path ".csv" in
  let oc = open_out empty in
  close_out oc;
  Alcotest.(check string) "empty message"
    (msg_of (fun () -> Csv.load_relation ~name:"r" empty))
    (msg_of (fun () ->
         Relstore.load_csv ~dest:(tmp_path ".jqh") ~name:"r" empty))

let test_backend_of_string () =
  let frames = 7 in
  Alcotest.(check bool) "mem" true
    (Relstore.backend_of_string ~frames "mem" = Some Relstore.Mem);
  Alcotest.(check bool) "paged" true
    (match Relstore.backend_of_string ~frames "Paged" with
    | Some (Relstore.Paged { frames = f; dir = None }) -> f = frames
    | Some (Relstore.Paged _ | Relstore.Mem) | None -> false);
  Alcotest.(check bool) "junk" true
    (Relstore.backend_of_string ~frames "zork" = None)

(* ------------------------------ b-tree ---------------------------- *)

(* Model: association list of (key, value) in insertion order.  Small
   key range + hundreds of inserts forces duplicate runs across leaf
   splits; page_size 512 forces multi-level trees. *)
let qcheck_btree_model =
  QCheck.Test.make ~name:"btree: find_all/iter match sorted model (reopen)"
    ~count:40
    QCheck.(
      make
        Gen.(list_size (int_range 0 400) (pair (int_bound 30) (int_bound 1000))))
    (fun pairs ->
      let path = tmp_path ".jqb" in
      let bt = Btree.create_file ~page_size:512 ~pool_frames:4 path in
      List.iteri
        (fun i (k, v) ->
          ignore i;
          Btree.insert bt (Int64.of_int k) (Int64.of_int v))
        pairs;
      let model_find k =
        List.filter_map
          (fun (k', v) -> if k' = k then Some (Int64.of_int v) else None)
          pairs
      in
      let ok_find =
        List.for_all
          (fun k -> Btree.find_all bt (Int64.of_int k) = model_find k)
          (List.init 32 Fun.id)
      in
      (* Full scan: sorted by key, insertion order within a key. *)
      let model_scan =
        List.stable_sort
          (fun (k1, _) (k2, _) -> compare k1 k2)
          pairs
        |> List.map (fun (k, v) -> (Int64.of_int k, Int64.of_int v))
      in
      let scanned = ref [] in
      Btree.iter bt (fun k v -> scanned := (k, v) :: !scanned);
      let ok_scan = List.rev !scanned = model_scan in
      let ok_count = Btree.count bt = List.length pairs in
      Btree.close bt;
      let bt2 = Btree.open_file ~pool_frames:4 path in
      let ok_reopen =
        Btree.count bt2 = List.length pairs
        && List.for_all
             (fun k -> Btree.find_all bt2 (Int64.of_int k) = model_find k)
             (List.init 32 Fun.id)
      in
      Btree.close bt2;
      ok_find && ok_scan && ok_count && ok_reopen)

let test_btree_iter_from () =
  let path = tmp_path ".jqb" in
  let bt = Btree.create_file ~page_size:512 path in
  List.iter
    (fun k -> Btree.insert bt (Int64.of_int k) (Int64.of_int (k * 10)))
    [ 5; 1; 9; 3; 7; 3 ];
  let from3 = ref [] in
  Btree.iter_from bt 4L (fun k v -> from3 := (k, v) :: !from3);
  Alcotest.(check (list (pair int64 int64)))
    "iter_from skips below the key"
    [ (5L, 50L); (7L, 70L); (9L, 90L) ]
    (List.rev !from3);
  Btree.close bt

(* ----------------------- index over a store ----------------------- *)

let test_index_column_probes () =
  let rel =
    relation_of "r" "a"
      (List.map Tuple.ints
         [ [ 1; 10 ]; [ 2; 20 ]; [ 1; 30 ]; [ 3; 40 ]; [ 1; 50 ] ])
  in
  let store, _ = paged_copy rel in
  let bt =
    Relstore.index_column ~page_size:512 ~pool_frames:4
      ~path:(tmp_path ".jqb") store 0
  in
  (* Every rid under a code decodes to a row holding that code's value;
     multiplicities survive. *)
  let hits = ref 0 in
  Btree.iter bt (fun code rid ->
      incr hits;
      let row = Relstore.row_of_rid store (Int64.to_int rid) in
      Alcotest.(check bool) "indexed value matches row" true
        (Value.eq (Tuple.get row 0)
           (Relstore.value_of_code store (Int64.to_int code))));
  Alcotest.(check int) "all rows indexed" 5 !hits;
  Btree.close bt;
  Relstore.close store

let suite =
  [
    Alcotest.test_case "page codec round-trips" `Quick test_page_codec;
    Alcotest.test_case "pager rejects foreign files" `Quick
      test_pager_rejects_foreign;
    Alcotest.test_case "heap meta round-trips" `Quick test_heap_meta_roundtrip;
    Alcotest.test_case "heap rejects oversized records" `Quick
      test_heap_oversized_record;
    Alcotest.test_case "pool exhaustion raises and recovers" `Quick
      test_pool_exhaustion;
    Alcotest.test_case "pinned frames survive eviction pressure" `Quick
      test_pinned_never_evicted;
    Alcotest.test_case "double unpin rejected" `Quick
      test_unpin_unpinned_rejected;
    Alcotest.test_case "csv error parity (ragged/empty)" `Quick
      test_load_into_errors_match;
    Alcotest.test_case "backend_of_string" `Quick test_backend_of_string;
    Alcotest.test_case "btree iter_from" `Quick test_btree_iter_from;
    Alcotest.test_case "index_column probes decode" `Quick
      test_index_column_probes;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        qcheck_heap_roundtrip;
        qcheck_pool_hammer;
        qcheck_relstore_roundtrip;
        qcheck_universe_backends_agree;
        qcheck_kary_backends_agree;
        qcheck_load_into_matches_load_relation;
        qcheck_btree_model;
      ]
