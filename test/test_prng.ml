(* PRNG: determinism, bounds, independence of split streams, permutation
   and sampling laws. *)

module Prng = Jqi_util.Prng

let test_deterministic () =
  let a = Prng.create 123 and b = Prng.create 123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_different_seeds_differ () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Prng.next_int64 a = Prng.next_int64 b then incr same
  done;
  Alcotest.(check int) "streams differ" 0 !same

let test_int_bounds () =
  let t = Prng.create 7 in
  for _ = 1 to 1000 do
    let bound = 1 + Prng.int t 100 in
    let v = Prng.int t bound in
    Alcotest.(check bool) "in range" true (v >= 0 && v < bound)
  done;
  Alcotest.check_raises "bound 0 rejected"
    (Invalid_argument "Prng.int: bound must be positive") (fun () ->
      ignore (Prng.int t 0))

let test_int_covers_range () =
  let t = Prng.create 11 in
  let seen = Array.make 10 false in
  for _ = 1 to 1000 do
    seen.(Prng.int t 10) <- true
  done;
  Alcotest.(check bool) "all 10 values hit in 1000 draws" true
    (Array.for_all Fun.id seen)

let test_float_bounds () =
  let t = Prng.create 13 in
  for _ = 1 to 1000 do
    let v = Prng.float t 2.5 in
    Alcotest.(check bool) "in [0, 2.5]" true (v >= 0. && v <= 2.5)
  done

let test_split_independent () =
  let parent = Prng.create 99 in
  let child = Prng.split parent in
  let xs = List.init 50 (fun _ -> Prng.next_int64 parent) in
  let ys = List.init 50 (fun _ -> Prng.next_int64 child) in
  Alcotest.(check bool) "no common prefix" true (List.hd xs <> List.hd ys);
  (* Crude decorrelation check: no element collisions in 50+50 draws. *)
  Alcotest.(check bool) "no collisions" true
    (List.for_all (fun x -> not (List.mem x ys)) xs)

let test_shuffle_is_permutation () =
  let t = Prng.create 5 in
  let arr = Array.init 30 Fun.id in
  let shuffled = Prng.shuffle t arr in
  Alcotest.(check (list int)) "same multiset" (Array.to_list arr)
    (List.sort compare (Array.to_list shuffled));
  Alcotest.(check (list int)) "input untouched" (List.init 30 Fun.id)
    (Array.to_list arr)

let test_sample_distinct () =
  let t = Prng.create 3 in
  let arr = Array.init 20 Fun.id in
  for k = 0 to 25 do
    let s = Prng.sample t k arr in
    Alcotest.(check int) "size" (min k 20) (Array.length s);
    let sorted = List.sort_uniq compare (Array.to_list s) in
    Alcotest.(check int) "distinct" (Array.length s) (List.length sorted)
  done

let test_pick () =
  let t = Prng.create 17 in
  for _ = 1 to 100 do
    let v = Prng.pick t [| 1; 2; 3 |] in
    Alcotest.(check bool) "picked member" true (List.mem v [ 1; 2; 3 ])
  done;
  Alcotest.check_raises "empty array"
    (Invalid_argument "Prng.pick: empty array") (fun () ->
      ignore (Prng.pick t [||]))

let test_bool_both_values () =
  let t = Prng.create 23 in
  let trues = ref 0 in
  for _ = 1 to 1000 do
    if Prng.bool t then incr trues
  done;
  Alcotest.(check bool) "roughly balanced" true (!trues > 400 && !trues < 600)

let suite =
  [
    Alcotest.test_case "deterministic by seed" `Quick test_deterministic;
    Alcotest.test_case "seeds differ" `Quick test_different_seeds_differ;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int covers range" `Quick test_int_covers_range;
    Alcotest.test_case "float bounds" `Quick test_float_bounds;
    Alcotest.test_case "split independence" `Quick test_split_independent;
    Alcotest.test_case "shuffle permutes" `Quick test_shuffle_is_permutation;
    Alcotest.test_case "sample distinct" `Quick test_sample_distinct;
    Alcotest.test_case "pick membership" `Quick test_pick;
    Alcotest.test_case "bool balanced" `Quick test_bool_both_values;
  ]
