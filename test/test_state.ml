(* Inference state: consistency (Example 3.1), certain tuples (§3.4), and
   the Lemma 3.2-3.4 characterizations cross-checked against brute force. *)

open Fixtures
module Bits = Jqi_util.Bits
module Omega = Jqi_core.Omega
module Universe = Jqi_core.Universe
module State = Jqi_core.State
module Sample = Jqi_core.Sample
module Brute = Jqi_core.Brute

let label_class st ij lbl = State.label st (class0 ij) lbl

let state_with examples =
  let st = State.create universe0 in
  List.iter (fun (ij, lbl) -> label_class st ij lbl) examples;
  st

(* Example 3.1: S0 = {(t2,t'2)+, (t4,t'1)+, (t3,t'2)−} is consistent with
   most specific predicate {(A1,B1),(A2,B3)}. *)
let test_example_3_1_consistent () =
  let st =
    state_with
      [
        ((2, 2), Sample.Positive); ((4, 1), Sample.Positive); ((3, 2), Sample.Negative);
      ]
  in
  Alcotest.(check bool) "consistent" true (State.consistent st);
  Alcotest.check bits_testable "most specific" (pred0 [ (0, 0); (1, 2) ])
    (State.inferred st)

(* Example 3.1's inconsistent sample S0': T(S'+) = ∅ selects the negative
   (t3,t'1). *)
let test_example_3_1_inconsistent () =
  let st =
    state_with [ ((1, 2), Sample.Positive); ((1, 3), Sample.Positive) ]
  in
  (* (t3,t'1) has signature ∅ and is now certain positive: labeling it
     negative must raise. *)
  Alcotest.check_raises "inconsistent labeling rejected"
    (State.Inconsistent { class_id = class0 (3, 1); label = Sample.Negative })
    (fun () -> label_class st (3, 1) Sample.Negative)

(* §3.4: with goal {(A2,B3)} and S = {(t2,t'2)+, (t1,t'3)−}, the examples
   ((t4,t'1),+) and ((t2,t'1),−) are uninformative. *)
let test_section_3_4_uninformative () =
  let st =
    state_with [ ((2, 2), Sample.Positive); ((1, 3), Sample.Negative) ]
  in
  Alcotest.(check (option label_testable))
    "(t4,t'1) certain positive" (Some Sample.Positive)
    (State.certain_label st (class0 (4, 1)));
  Alcotest.(check (option label_testable))
    "(t2,t'1) certain negative" (Some Sample.Negative)
    (State.certain_label st (class0 (2, 1)));
  Alcotest.(check bool)
    "(t3,t'2) informative" true
    (State.informative st (class0 (3, 2)))

(* Lemma 3.2 + 3.3 + 3.4 against the brute-force definitions, over every
   class of the Example 2.1 universe and a spread of samples. *)
let samples_for_cross_check =
  [
    [];
    [ ((2, 2), Sample.Positive) ];
    [ ((3, 1), Sample.Negative) ];
    [ ((2, 2), Sample.Positive); ((1, 3), Sample.Negative) ];
    [ ((1, 3), Sample.Positive); ((3, 1), Sample.Negative) ];
    [ ((2, 2), Sample.Positive); ((4, 1), Sample.Positive); ((3, 2), Sample.Negative) ];
  ]

let test_lemmas_vs_brute () =
  List.iter
    (fun examples ->
      let st = state_with examples in
      let cs = Brute.consistent_with_state st in
      Alcotest.(check bool) "C(S) nonempty" true (cs <> []);
      for i = 0 to Universe.n_classes universe0 - 1 do
        let s = Universe.signature universe0 i in
        Alcotest.(check (option label_testable))
          (Printf.sprintf "class %d certain label" i)
          (Brute.certain_label_def cs s)
          (State.certain_label st i)
      done)
    samples_for_cross_check

(* Lemma 3.2: the goal-dependent Uninf(S) definition agrees with Cert(S)
   (which is goal-independent), for several goals. *)
let test_uninf_equals_cert () =
  let goals =
    [ pred0 []; pred0 [ (1, 2) ]; pred0 [ (0, 0); (1, 2) ]; pred0 [ (0, 2) ] ]
  in
  List.iter
    (fun goal ->
      (* Build the sample the honest user would give on two probe tuples. *)
      let st = State.create universe0 in
      let oracle = Jqi_core.Oracle.honest ~goal in
      List.iter
        (fun ij ->
          let c = class0 ij in
          State.label st c (Jqi_core.Oracle.label oracle universe0 c))
        [ (2, 2); (1, 3) ];
      let pos =
        List.filter_map
          (fun (i, l) ->
            if l = Sample.Positive then Some (Universe.signature universe0 i)
            else None)
          (State.history st)
      in
      let neg = State.negatives st in
      for i = 0 to Universe.n_classes universe0 - 1 do
        let s = Universe.signature universe0 i in
        let by_def = Brute.uninformative_def omega0 ~pos ~neg ~goal s in
        let by_cert = State.certain_label st i in
        (* Uninformative by definition iff certain; and when both are
           defined the labels agree (the goal's label is the certain one). *)
        Alcotest.(check bool)
          (Printf.sprintf "uninf=cert class %d" i)
          (by_def <> None) (by_cert <> None);
        (match (by_def, by_cert) with
        | Some a, Some b -> Alcotest.check label_testable "labels agree" a b
        | _ -> ())
      done)
    goals

let test_uninf_count () =
  (* §4.4 walk-through: S = {(t1,t'3)+, (t3,t'1)−} has 5 uninformative
     tuples besides the 2 labeled ones. *)
  let st =
    state_with [ ((1, 3), Sample.Positive); ((3, 1), Sample.Negative) ]
  in
  Alcotest.(check int) "uninf + labeled" 7 (State.uninf_tuples st);
  Alcotest.(check int) "informative left" 5
    (List.length (State.informative_classes st))

let test_extend_virtual_does_not_mutate () =
  let st = state_with [ ((2, 2), Sample.Positive) ] in
  let before = State.tpos st in
  let s = Universe.signature universe0 (class0 (1, 1)) in
  let tpos', negs' = State.extend_virtual st [ (s, Sample.Negative) ] in
  Alcotest.check bits_testable "tpos unchanged" before (State.tpos st);
  Alcotest.check bits_testable "virtual tpos same for negative" before tpos';
  Alcotest.(check int) "virtual negs grew" 1 (List.length negs')

(* Certainty is monotone in the sample — the invariant the lookahead
   optimization rests on (Entropy scans only currently-informative
   classes): once certain, a class stays certain under any consistent
   extension. *)
let test_certainty_monotone () =
  let prng = Jqi_util.Prng.create 55 in
  for _ = 1 to 100 do
    let goal =
      Universe.signature universe0 (Jqi_util.Prng.int prng (Universe.n_classes universe0))
    in
    let oracle = Jqi_core.Oracle.honest ~goal in
    let st = State.create universe0 in
    let certain_before = ref [] in
    for _ = 1 to 4 do
      certain_before :=
        List.filter
          (fun i -> State.certain_label st i <> None)
          (List.init (Universe.n_classes universe0) Fun.id);
      (match State.informative_classes st with
      | [] -> ()
      | is ->
          let c = Jqi_util.Prng.pick_list prng is in
          State.label st c (Jqi_core.Oracle.label oracle universe0 c));
      List.iter
        (fun i ->
          Alcotest.(check bool) "stays certain" true
            (State.certain_label st i <> None))
        !certain_before
    done
  done

(* uninf_tuples is monotone along a run, and bounded by |D|. *)
let test_uninf_monotone () =
  let goal = pred0 [ (0, 2) ] in
  let oracle = Jqi_core.Oracle.honest ~goal in
  let st = State.create universe0 in
  let prev = ref (State.uninf_tuples st) in
  let rec go () =
    match State.informative_classes st with
    | [] -> ()
    | c :: _ ->
        State.label st c (Jqi_core.Oracle.label oracle universe0 c);
        let now = State.uninf_tuples st in
        Alcotest.(check bool) "monotone" true (now >= !prev);
        Alcotest.(check bool) "bounded" true
          (now <= Universe.total_tuples universe0);
        prev := now;
        go ()
  in
  go ()

let test_pp_smoke () =
  let st = state_with [ ((2, 2), Sample.Positive) ] in
  Alcotest.(check bool) "state pp" true
    (String.length (Fmt.str "%a" State.pp st) > 0);
  Alcotest.(check bool) "universe pp" true
    (String.length (Fmt.str "%a" Universe.pp universe0) > 0);
  Alcotest.(check bool) "relation pp" true
    (String.length (Fmt.str "%a" Jqi_relational.Relation.pp Fixtures.r0) > 0)

let suite =
  [
    Alcotest.test_case "example 3.1 consistent sample" `Quick test_example_3_1_consistent;
    Alcotest.test_case "certainty monotone" `Quick test_certainty_monotone;
    Alcotest.test_case "uninf count monotone" `Quick test_uninf_monotone;
    Alcotest.test_case "pp smoke" `Quick test_pp_smoke;
    Alcotest.test_case "example 3.1 inconsistent sample" `Quick test_example_3_1_inconsistent;
    Alcotest.test_case "section 3.4 uninformative examples" `Quick test_section_3_4_uninformative;
    Alcotest.test_case "lemmas 3.3/3.4 vs brute force" `Quick test_lemmas_vs_brute;
    Alcotest.test_case "lemma 3.2 Uninf = Cert" `Quick test_uninf_equals_cert;
    Alcotest.test_case "uninformative count (4.4 walk-through)" `Quick test_uninf_count;
    Alcotest.test_case "extend_virtual is pure" `Quick test_extend_virtual_does_not_mutate;
  ]
