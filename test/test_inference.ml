(* Algorithm 1 end to end: golden runs on the paper's instances, and
   qcheck properties on random instances — every strategy always halts
   and always returns a predicate instance-equivalent to the goal. *)

open Fixtures
module Bits = Jqi_util.Bits
module Prng = Jqi_util.Prng
module Value = Jqi_relational.Value
module Schema = Jqi_relational.Schema
module Tuple = Jqi_relational.Tuple
module Relation = Jqi_relational.Relation
module Omega = Jqi_core.Omega
module Universe = Jqi_core.Universe
module State = Jqi_core.State
module Sample = Jqi_core.Sample
module Strategy = Jqi_core.Strategy
module Oracle = Jqi_core.Oracle
module Inference = Jqi_core.Inference

(* The introduction's scenario: Q1 and Q2 over Flight ⋈ Hotel must be
   recovered exactly (they are distinguishable on this instance). *)
let test_flight_hotel () =
  let universe = Universe.build flight hotel in
  let omega = Universe.omega universe in
  let q1 = Omega.of_names omega [ ("To", "City") ] in
  let q2 = Omega.of_names omega [ ("To", "City"); ("Airline", "Discount") ] in
  List.iter
    (fun goal ->
      List.iter
        (fun strategy ->
          let result = Inference.run universe strategy (Oracle.honest ~goal) in
          Alcotest.(check bool)
            (Printf.sprintf "%s equivalent" (Strategy.name strategy))
            true
            (Inference.verified universe ~goal result);
          (* Q1/Q2 are the most specific consistent predicates here, so the
             inference recovers them exactly. *)
          Alcotest.check bits_testable "exact recovery" goal result.predicate)
        [ Strategy.bu; Strategy.td; Strategy.l1s; Strategy.l2s ])
    [ q1; q2 ]

let test_result_metadata () =
  let universe = Universe.build flight hotel in
  let omega = Universe.omega universe in
  let goal = Omega.of_names omega [ ("To", "City") ] in
  let result = Inference.run universe Strategy.td (Oracle.honest ~goal) in
  Alcotest.(check string) "strategy name" "TD" result.strategy;
  Alcotest.(check bool) "halted" true result.halted;
  Alcotest.(check int) "steps = interactions" result.n_interactions
    (List.length result.steps);
  Alcotest.(check bool) "elapsed non-negative" true (result.elapsed >= 0.)

let test_budget () =
  let universe = Universe.build flight hotel in
  let omega = Universe.omega universe in
  let goal = Omega.of_names omega [ ("To", "City") ] in
  let result =
    Inference.run ~max_interactions:1 universe Strategy.bu (Oracle.honest ~goal)
  in
  Alcotest.(check int) "one step" 1 result.n_interactions;
  Alcotest.(check bool) "not halted" false result.halted

(* The noisy oracle can only mislead, never crash Algorithm 1: labeling an
   informative tuple keeps the sample consistent by definition. *)
let test_noisy_oracle_never_inconsistent () =
  let prng = Prng.create 31 in
  let goal = pred0 [ (0, 0); (1, 2) ] in
  for _ = 1 to 50 do
    let oracle = Oracle.noisy prng ~error_rate:0.3 (Oracle.honest ~goal) in
    let result = Inference.run universe0 Strategy.td oracle in
    Alcotest.(check bool) "sample stays consistent" true
      (State.consistent result.state)
  done

(* Halt condition Γ: after a run, no informative tuple is left, and the
   result is T(S+). *)
let test_halt_condition () =
  let goal = pred0 [ (1, 2) ] in
  let result = Inference.run universe0 Strategy.l1s (Oracle.honest ~goal) in
  Alcotest.(check bool) "halted" true result.halted;
  Alcotest.(check (list int)) "no informative left" []
    (State.informative_classes result.state);
  Alcotest.check bits_testable "predicate = T(S+)"
    (State.tpos result.state) result.predicate

let test_transcript () =
  let universe = Universe.build flight hotel in
  let omega = Universe.omega universe in
  let goal = Omega.of_names omega [ ("To", "City") ] in
  let result = Inference.run universe Strategy.td (Oracle.honest ~goal) in
  let text = Fmt.str "%a" (Inference.pp_transcript universe) result in
  (* One line per step plus the conclusion. *)
  let lines = String.split_on_char '\n' text in
  Alcotest.(check int) "line count" (result.n_interactions + 1)
    (List.length lines);
  Alcotest.(check bool) "mentions the predicate" true
    (let n = String.length text in
     let needle = "(To,City)" in
     let nl = String.length needle in
     let rec go i = i + nl <= n && (String.sub text i nl = needle || go (i + 1)) in
     go 0)

(* ----------------------- random instances ------------------------- *)

let gen_instance =
  QCheck.Gen.(
    let cell = map (fun i -> Value.Int i) (int_bound 2) in
    let* ra = int_range 1 3 and* pa = int_range 1 3 in
    let row arity = map Tuple.of_list (list_repeat arity cell) in
    let* rrows = list_size (int_range 1 4) (row ra)
    and* prows = list_size (int_range 1 4) (row pa) in
    return (ra, pa, rrows, prows))

let build_instance (ra, pa, rrows, prows) =
  let mk name prefix arity rows =
    Relation.of_list ~name
      ~schema:
        (Schema.of_names ~ty:Value.TInt
           (List.init arity (fun i -> Printf.sprintf "%s%d" prefix (i + 1))))
      rows
  in
  Universe.build (mk "R" "A" ra rrows) (mk "P" "B" pa prows)

let arb_instance =
  QCheck.make gen_instance
    ~print:(fun (ra, pa, rrows, prows) ->
      Printf.sprintf "R:%dx%d P:%dx%d [%s | %s]" (List.length rrows) ra
        (List.length prows) pa
        (String.concat ";" (List.map Tuple.to_string rrows))
        (String.concat ";" (List.map Tuple.to_string prows)))

(* Pick a goal from the instance's own signatures (plus ∅ and Ω). *)
let goals_for universe =
  let omega = Universe.omega universe in
  Omega.empty omega :: Omega.full omega
  :: Universe.signatures universe

let strategy_pool seed =
  [
    Strategy.bu;
    Strategy.td;
    Strategy.l1s;
    Strategy.l2s;
    Strategy.rnd (Prng.create seed);
    Strategy.igs ~samples:32 (Prng.create seed);
  ]

let qcheck_all_strategies_equivalent =
  QCheck.Test.make ~name:"every strategy infers an instance-equivalent predicate"
    ~count:60 arb_instance (fun inst ->
      let universe = build_instance inst in
      List.for_all
        (fun goal ->
          List.for_all
            (fun strategy ->
              let result =
                Inference.run universe strategy (Oracle.honest ~goal)
              in
              result.halted && Inference.verified universe ~goal result)
            (strategy_pool 5))
        (goals_for universe))

let qcheck_interactions_bounded_by_classes =
  QCheck.Test.make ~name:"interactions never exceed the class count" ~count:100
    arb_instance (fun inst ->
      let universe = build_instance inst in
      List.for_all
        (fun goal ->
          let result =
            Inference.run universe Strategy.bu (Oracle.honest ~goal)
          in
          result.n_interactions <= Universe.n_classes universe)
        (goals_for universe))

let qcheck_inferred_is_most_specific_consistent =
  QCheck.Test.make
    ~name:"inferred predicate is consistent and most specific" ~count:60
    arb_instance (fun inst ->
      let universe = build_instance inst in
      List.for_all
        (fun goal ->
          let result =
            Inference.run universe Strategy.td (Oracle.honest ~goal)
          in
          let st = result.state in
          (* Consistent: selects every positive class, no negative class. *)
          List.for_all
            (fun (c, lbl) ->
              let selected =
                Jqi_core.Tsig.selects result.predicate
                  (Universe.signature universe c)
              in
              match lbl with
              | Sample.Positive -> selected
              | Sample.Negative -> not selected)
            (State.history st)
          (* Most specific: any strictly more specific predicate loses a
             positive example. *)
          && Bits.subset result.predicate (State.tpos st)
             && Bits.subset (State.tpos st) result.predicate)
        (goals_for universe))

(* Wider instances (arity up to 5) with the cheap strategies: the
   equivalence guarantee does not depend on Ω staying small. *)
let qcheck_wide_instances =
  let gen =
    QCheck.Gen.(
      let cell = map (fun i -> Value.Int i) (int_bound 2) in
      let* ra = int_range 3 5 and* pa = int_range 3 5 in
      let row arity = map Tuple.of_list (list_repeat arity cell) in
      let* rrows = list_size (int_range 2 3) (row ra)
      and* prows = list_size (int_range 2 3) (row pa) in
      return (ra, pa, rrows, prows))
  in
  QCheck.Test.make ~name:"wide instances stay equivalent" ~count:40
    (QCheck.make gen) (fun inst ->
      let universe = build_instance inst in
      List.for_all
        (fun goal ->
          List.for_all
            (fun strategy ->
              let result = Inference.run universe strategy (Oracle.honest ~goal) in
              result.halted && Inference.verified universe ~goal result)
            [ Strategy.bu; Strategy.td; Strategy.l1s ])
        (goals_for universe))

let suite =
  [
    Alcotest.test_case "flight&hotel Q1/Q2" `Quick test_flight_hotel;
    Alcotest.test_case "result metadata" `Quick test_result_metadata;
    Alcotest.test_case "interaction budget" `Quick test_budget;
    Alcotest.test_case "noisy oracle stays consistent" `Quick test_noisy_oracle_never_inconsistent;
    Alcotest.test_case "halt condition" `Quick test_halt_condition;
    Alcotest.test_case "transcript rendering" `Quick test_transcript;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        qcheck_all_strategies_equivalent;
        qcheck_interactions_bounded_by_classes;
        qcheck_inferred_is_most_specific_consistent;
        qcheck_wide_instances;
      ]
