(* Semijoins (§6): semantics on Example 2.1, CONS⋉ via SAT vs brute force,
   and the Appendix A.1 reduction (Theorem 6.1, both directions, on φ0 and
   on random 3SAT instances). *)

open Fixtures
module Bits = Jqi_util.Bits
module Prng = Jqi_util.Prng
module Relation = Jqi_relational.Relation
module Omega = Jqi_core.Omega
module Semijoin = Jqi_semijoin.Semijoin
module Cons = Jqi_semijoin.Cons
module Reduction = Jqi_semijoin.Reduction
module Threesat = Jqi_sat.Threesat
module Dpll = Jqi_sat.Dpll

(* Example 2.1 semijoin results. *)
let test_example_2_1_semijoins () =
  let check_rows name theta expected =
    let result = Semijoin.eval r0 p0 omega0 (pred0 theta) in
    Alcotest.(check (list int))
      name expected
      (List.filter_map
         (fun i ->
           if Relation.mem result (Relation.row r0 i) then Some i else None)
         [ 0; 1; 2; 3 ])
  in
  check_rows "θ1 selects {t2,t4}" [ (0, 0); (1, 2) ] [ 1; 3 ];
  check_rows "θ2 selects {t1,t4}" [ (1, 1) ] [ 0; 3 ];
  check_rows "θ3 selects {}" [ (1, 0); (1, 1); (1, 2) ] [];
  check_rows "∅ selects all" [] [ 0; 1; 2; 3 ]

(* §6's worked sample: S+ = {t1,t2}, S− = {t3}; θ = {(A1,B2)} is
   consistent. *)
let test_section6_sample () =
  let s = Semijoin.sample ~pos:[ 0; 1 ] ~neg:[ 2 ] in
  Alcotest.(check bool) "θ={(A1,B2)} consistent" true
    (Semijoin.predicate_consistent r0 p0 omega0 (pred0 [ (0, 1) ]) s);
  Alcotest.(check bool) "CONS holds" true (Cons.consistent r0 p0 omega0 s);
  match Cons.solve r0 p0 omega0 s with
  | None -> Alcotest.fail "expected a witness"
  | Some theta ->
      Alcotest.(check bool) "witness checks out" true
        (Semijoin.predicate_consistent r0 p0 omega0 theta s)

let test_sample_validation () =
  Alcotest.check_raises "conflicting labels rejected"
    (Invalid_argument "Semijoin.sample: tuple 1 labeled both ways")
    (fun () -> ignore (Semijoin.sample ~pos:[ 0; 1 ] ~neg:[ 1 ]))

(* SAT-based decision vs brute force over random samples on Example 2.1's
   instance (|Ω| = 6, bruteable). *)
let test_cons_sat_vs_brute () =
  let prng = Prng.create 3 in
  for _ = 1 to 200 do
    let labels = Array.init 4 (fun _ -> Prng.int prng 3) in
    let collect v =
      List.filter (fun i -> labels.(i) = v) [ 0; 1; 2; 3 ]
    in
    let s = Semijoin.sample ~pos:(collect 1) ~neg:(collect 2) in
    Alcotest.(check bool)
      (Printf.sprintf "sat=brute pos=%s neg=%s"
         (String.concat "," (List.map string_of_int s.pos))
         (String.concat "," (List.map string_of_int s.neg)))
      (Cons.consistent_brute r0 p0 omega0 s)
      (Cons.consistent r0 p0 omega0 s)
  done

(* Appendix A.1 structure on φ0 = (x1∨x2∨¬x3) ∧ (¬x1∨x3∨x4). *)
let test_reduction_phi0_shape () =
  let red = Reduction.build Threesat.phi0 in
  Alcotest.(check int) "R rows = k + 1 + n" 7 (Relation.cardinality red.r);
  Alcotest.(check int) "P rows = 3k + 1 + n" 11 (Relation.cardinality red.p);
  Alcotest.(check int) "R arity" 5 (Relation.arity red.r);
  Alcotest.(check int) "P arity" 9 (Relation.arity red.p);
  Alcotest.(check int) "positives" 2 (List.length red.sample.pos);
  Alcotest.(check int) "negatives" 5 (List.length red.sample.neg)

let test_reduction_phi0_consistent () =
  let red = Reduction.build Threesat.phi0 in
  match Cons.solve red.r red.p red.omega red.sample with
  | None -> Alcotest.fail "φ0 is satisfiable, reduction must be consistent"
  | Some theta ->
      let v = Reduction.valuation_of_predicate red theta in
      Alcotest.(check bool) "decoded valuation satisfies φ0" true
        (Threesat.eval v Threesat.phi0)

(* An unsatisfiable formula: (x∨x…) forms requiring x1 in all polarities.
   Use (x1∨x2∨x3) ∧ all-negative clauses forcing contradiction via pigeon
   structure is overkill: encode x1 ∧ ¬x1 with padding variables. *)
let unsat_phi =
  (* (x1∨x2∨x3) ∧ (x1∨x2∨¬x3) ∧ (x1∨¬x2∨x3) ∧ (x1∨¬x2∨¬x3) ∧
     (¬x1∨x2∨x3) ∧ (¬x1∨x2∨¬x3) ∧ (¬x1∨¬x2∨x3) ∧ (¬x1∨¬x2∨¬x3):
     all eight sign patterns over three variables — unsatisfiable. *)
  let lit var pos = { Threesat.var; pos } in
  Threesat.create ~nvars:3
    (List.concat_map
       (fun p1 ->
         List.concat_map
           (fun p2 ->
             List.map (fun p3 -> (lit 1 p1, lit 2 p2, lit 3 p3)) [ true; false ])
           [ true; false ])
       [ true; false ])

let test_reduction_unsat () =
  Alcotest.(check bool) "unsat_phi really unsat" false
    (Dpll.is_sat (Threesat.to_cnf unsat_phi));
  let red = Reduction.build unsat_phi in
  Alcotest.(check bool) "reduction inconsistent" false
    (Cons.consistent red.r red.p red.omega red.sample)

(* Theorem 6.1 both ways on random formulas: φ sat ⟺ reduction ∈ CONS⋉. *)
let test_reduction_equivalence_random () =
  let prng = Prng.create 17 in
  for _ = 1 to 25 do
    let nvars = 3 + Prng.int prng 3 in
    let nclauses = 2 + Prng.int prng (3 * nvars) in
    let phi = Threesat.random prng ~nvars ~nclauses in
    let phi_sat = Dpll.is_sat (Threesat.to_cnf phi) in
    let red = Reduction.build phi in
    match Cons.solve red.r red.p red.omega red.sample with
    | None ->
        Alcotest.(check bool)
          (Fmt.str "unsat side: %a" Threesat.pp phi)
          phi_sat false
    | Some theta ->
        Alcotest.(check bool)
          (Fmt.str "sat side: %a" Threesat.pp phi)
          phi_sat true;
        let v = Reduction.valuation_of_predicate red theta in
        Alcotest.(check bool)
          (Fmt.str "decoded valuation works: %a" Threesat.pp phi)
          true (Threesat.eval v phi)
  done

(* The empty predicate: with a non-empty P it selects everything, so any
   sample with a negative example rules it out but pos-only samples are
   always consistent. *)
let test_empty_predicate_cases () =
  let all_pos = Semijoin.sample ~pos:[ 0; 1; 2; 3 ] ~neg:[] in
  Alcotest.(check bool) "positive-only always consistent" true
    (Cons.consistent r0 p0 omega0 all_pos);
  let all_neg = Semijoin.sample ~pos:[] ~neg:[ 0; 1; 2; 3 ] in
  (* Ω itself selects nothing on this instance (no tuple of the product has
     a full signature), so all-negative is consistent too. *)
  Alcotest.(check bool) "all-negative consistent via Ω" true
    (Cons.consistent r0 p0 omega0 all_neg)

let suite =
  [
    Alcotest.test_case "example 2.1 semijoins" `Quick test_example_2_1_semijoins;
    Alcotest.test_case "section 6 sample" `Quick test_section6_sample;
    Alcotest.test_case "sample validation" `Quick test_sample_validation;
    Alcotest.test_case "CONS sat vs brute (random)" `Quick test_cons_sat_vs_brute;
    Alcotest.test_case "reduction shape (φ0)" `Quick test_reduction_phi0_shape;
    Alcotest.test_case "reduction consistent (φ0)" `Quick test_reduction_phi0_consistent;
    Alcotest.test_case "reduction inconsistent (unsat φ)" `Quick test_reduction_unsat;
    Alcotest.test_case "theorem 6.1 equivalence (random)" `Quick test_reduction_equivalence_random;
    Alcotest.test_case "empty predicate cases" `Quick test_empty_predicate_cases;
  ]
