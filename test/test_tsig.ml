(* T-signatures: Figure 3 of the paper as a golden test, plus edge cases. *)

open Fixtures
module Bits = Jqi_util.Bits
module Value = Jqi_relational.Value
module Tuple = Jqi_relational.Tuple
module Relation = Jqi_relational.Relation
module Omega = Jqi_core.Omega
module Tsig = Jqi_core.Tsig

let check_sig = Alcotest.check bits_testable

let sig_of (i, j) =
  Tsig.of_tuples omega0 (Relation.row r0 (i - 1)) (Relation.row p0 (j - 1))

let test_figure3 () =
  List.iter
    (fun (ij, pairs) ->
      let expected = pred0 pairs in
      check_sig
        (Printf.sprintf "T(t%d,t'%d)" (fst ij) (snd ij))
        expected (sig_of ij))
    figure3

let test_t_of_empty_set_is_omega () =
  check_sig "T(∅) = Ω" (Omega.full omega0) (Tsig.of_signatures omega0 [])

let test_t_of_set_is_intersection () =
  (* T({(t2,t'2),(t4,t'1)}) = {(A1,B1),(A2,B3)} ∩ {(A1,B1),(A1,B2),(A2,B3)},
     the θ0 of Example 3.1. *)
  let s = Tsig.of_signatures omega0 [ sig_of (2, 2); sig_of (4, 1) ] in
  check_sig "θ0" (pred0 [ (0, 0); (1, 2) ]) s

let test_null_never_matches () =
  let omega = Omega.create ~n:2 ~m:2 () in
  let tr = Tuple.of_list [ Value.Null; Value.Int 1 ] in
  let tp = Tuple.of_list [ Value.Null; Value.Int 1 ] in
  let s = Tsig.of_tuples omega tr tp in
  (* NULL=NULL and NULL=1 contribute nothing; only 1=1 matches. *)
  check_sig "null sig" (Omega.of_pairs omega [ (1, 1) ]) s

let test_selects () =
  let s = sig_of (1, 1) in
  Alcotest.(check bool) "empty selects" true (Tsig.selects (Omega.empty omega0) s);
  Alcotest.(check bool) "subset selects" true
    (Tsig.selects (pred0 [ (1, 0) ]) s);
  Alcotest.(check bool) "non-subset rejects" false
    (Tsig.selects (pred0 [ (0, 0) ]) s)

let test_cross_type_no_match () =
  let omega = Omega.create ~n:1 ~m:2 () in
  let tr = Tuple.of_list [ Value.Int 1 ] in
  let tp = Tuple.of_list [ Value.Float 1.0; Value.Str "1" ] in
  check_sig "int vs float/string" (Omega.empty omega) (Tsig.of_tuples omega tr tp)

let suite =
  [
    Alcotest.test_case "figure 3 T column" `Quick test_figure3;
    Alcotest.test_case "T of empty set is Omega" `Quick test_t_of_empty_set_is_omega;
    Alcotest.test_case "T of set intersects" `Quick test_t_of_set_is_intersection;
    Alcotest.test_case "null never matches" `Quick test_null_never_matches;
    Alcotest.test_case "selects = subset" `Quick test_selects;
    Alcotest.test_case "cross-type equality is false" `Quick test_cross_type_no_match;
  ]
