(* Strategies (§4): the paper's narrated choices on Example 2.1 and the
   structural invariants every strategy must satisfy. *)

open Fixtures
module Bits = Jqi_util.Bits
module Prng = Jqi_util.Prng
module Omega = Jqi_core.Omega
module Universe = Jqi_core.Universe
module State = Jqi_core.State
module Sample = Jqi_core.Sample
module Strategy = Jqi_core.Strategy
module Lattice = Jqi_core.Lattice

let fresh () = State.create universe0

let choose_sig strategy st =
  Option.map (Universe.signature universe0) (Strategy.choose strategy st)

(* §4.3: on Example 2.1 "the BU strategy asks the user to label the tuple
   t0 = (t3,t'1) corresponding to ∅ first; if negative, it selects the
   tuple (t2,t'1) corresponding to {(A1,B3)}". *)
let test_bu_narrative () =
  let st = fresh () in
  (match choose_sig Strategy.bu st with
  | Some s -> Alcotest.check bits_testable "first: empty sig" (pred0 []) s
  | None -> Alcotest.fail "BU returned nothing");
  State.label st (class0 (3, 1)) Sample.Negative;
  match choose_sig Strategy.bu st with
  | Some s -> Alcotest.check bits_testable "then: {(A1,B3)}" (pred0 [ (0, 2) ]) s
  | None -> Alcotest.fail "BU returned nothing after one negative"

(* §4.3: TD starts with tuples whose signature is ⊆-maximal (the size-3
   ones); after a positive example it behaves like BU. *)
let test_td_starts_maximal () =
  let st = fresh () in
  let maximal = Lattice.maximal_signatures (Universe.signatures universe0) in
  match choose_sig Strategy.td st with
  | Some s ->
      Alcotest.(check bool) "maximal first" true
        (List.exists (Bits.equal s) maximal)
  | None -> Alcotest.fail "TD returned nothing"

let test_td_all_negatives_ends_without_all_labels () =
  (* If the user labels all maximal tuples negative, everything else is
     certain and TD halts with Ω, far before |D| questions (the BU
     worst-case the paper warns about). *)
  let st = fresh () in
  let oracle = Jqi_core.Oracle.honest ~goal:(Omega.full omega0) in
  let steps = ref 0 in
  let rec go () =
    match Strategy.choose Strategy.td st with
    | None -> ()
    | Some c ->
        incr steps;
        State.label st c (Jqi_core.Oracle.label oracle universe0 c);
        go ()
  in
  go ();
  (* Exactly the seven ⊆-maximal signatures get asked — far fewer than the
     12 classes (or the |D| questions BU would need). *)
  Alcotest.(check int) "only the seven maximal tuples" 7 !steps;
  Alcotest.check bits_testable "inferred Ω ... as T(S+) with no positives"
    (Omega.full omega0) (State.inferred st)

let test_td_after_positive_is_bu () =
  let st = fresh () in
  State.label st (class0 (1, 3)) Sample.Positive;
  (* Now TD = BU: pick an informative tuple with minimal |T|. *)
  let td = choose_sig Strategy.td st and bu = choose_sig Strategy.bu st in
  match (td, bu) with
  | Some a, Some b ->
      Alcotest.(check int) "same size" (Bits.cardinal b) (Bits.cardinal a)
  | _ -> Alcotest.fail "strategies returned nothing"

(* §4.4: with the corrected Figure 5 (see test_entropy.ml), L1S picks the
   tuple (t2,t'1) with entropy (1,4) on the empty sample. *)
let test_l1s_choice () =
  let st = fresh () in
  match Strategy.choose Strategy.l1s st with
  | Some c -> Alcotest.(check int) "picks (t2,t'1)" (class0 (2, 1)) c
  | None -> Alcotest.fail "L1S returned nothing"

(* §4.4 walk-through: from S = {(t1,t'3)+, (t3,t'1)−}, labeling (t2,t'1)
   positive ends the game; its entropy² (3,3) has the best worst case, so
   L2S must choose it. *)
let test_l2s_walkthrough_choice () =
  let st = fresh () in
  State.label st (class0 (1, 3)) Sample.Positive;
  State.label st (class0 (3, 1)) Sample.Negative;
  match Strategy.choose Strategy.l2s st with
  | Some c -> Alcotest.(check int) "picks (t2,t'1)" (class0 (2, 1)) c
  | None -> Alcotest.fail "L2S returned nothing"

(* Every strategy proposes only informative tuples, at every step of every
   inference, for several goals. *)
let strategies () =
  [
    Strategy.bu;
    Strategy.td;
    Strategy.l1s;
    Strategy.l2s;
    Strategy.lks 3;
    Strategy.rnd (Prng.create 1);
    Strategy.igs ~samples:64 (Prng.create 2);
  ]

let test_only_informative_proposed () =
  let goals =
    [ pred0 []; pred0 [ (0, 2) ]; pred0 [ (0, 0); (1, 2) ]; Omega.full omega0 ]
  in
  List.iter
    (fun goal ->
      List.iter
        (fun strategy ->
          let st = fresh () in
          let oracle = Jqi_core.Oracle.honest ~goal in
          let rec go n =
            if n > 20 then Alcotest.fail "no convergence in 20 steps"
            else
              match Strategy.choose strategy st with
              | None -> ()
              | Some c ->
                  Alcotest.(check bool)
                    (Printf.sprintf "%s proposes informative" (Strategy.name strategy))
                    true (State.informative st c);
                  State.label st c (Jqi_core.Oracle.label oracle universe0 c);
                  go (n + 1)
          in
          go 0)
        (strategies ()))
    goals

let test_lks_validation () =
  Alcotest.(check bool) "k=0 rejected" true
    (try ignore (Strategy.lks 0); false with Invalid_argument _ -> true);
  Alcotest.(check string) "name" "L3S" (Strategy.name (Strategy.lks 3))

let test_rnd_deterministic_by_seed () =
  let run seed =
    let strategy = Strategy.rnd (Prng.create seed) in
    let oracle = Jqi_core.Oracle.honest ~goal:(pred0 [ (0, 2) ]) in
    let result = Jqi_core.Inference.run universe0 strategy oracle in
    List.map fst result.steps
  in
  Alcotest.(check (list int)) "same seed, same trace" (run 7) (run 7)

let suite =
  [
    Alcotest.test_case "BU narrative (§4.3)" `Quick test_bu_narrative;
    Alcotest.test_case "TD starts at maximal nodes" `Quick test_td_starts_maximal;
    Alcotest.test_case "TD all-negative run" `Quick test_td_all_negatives_ends_without_all_labels;
    Alcotest.test_case "TD turns into BU after positive" `Quick test_td_after_positive_is_bu;
    Alcotest.test_case "L1S choice on Figure 5" `Quick test_l1s_choice;
    Alcotest.test_case "L2S walkthrough choice" `Quick test_l2s_walkthrough_choice;
    Alcotest.test_case "only informative proposed" `Quick test_only_informative_proposed;
    Alcotest.test_case "LkS validation" `Quick test_lks_validation;
    Alcotest.test_case "RND deterministic by seed" `Quick test_rnd_deterministic_by_seed;
  ]
