(* The concurrency battery for the sharded server (doc/SERVICE.md
   "Concurrency testing"): domains of interleaved sessions must converge
   to the same θ as a sequential run with no leaks and exact shard
   accounting; the worker pool's submit/shed bookkeeping is pinned with a
   gated worker; the socket listener is exercised end-to-end over a
   Unix-domain socket (including garbage and oversized lines); and a
   QCheck race hammer throws random operation interleavings at one
   manager from several domains and checks the invariants survive. *)

open Fixtures
module Bits = Jqi_util.Bits
module Prng = Jqi_util.Prng
module Engine = Jqi_core.Engine
module Sample = Jqi_core.Sample
module Catalog = Jqi_server.Catalog
module Manager = Jqi_server.Manager
module Pool = Jqi_server.Pool
module Listener = Jqi_server.Listener
module P = Jqi_server.Protocol
module Service = Jqi_server.Service

let fh_omega =
  Jqi_core.Omega.of_schemas
    (Relation.schema Fixtures.flight)
    (Relation.schema Fixtures.hotel)

let fh_goal = Jqi_core.Omega.of_names fh_omega [ ("To", "City") ]

let label_for goal signature =
  if Bits.subset goal signature then Sample.Positive else Sample.Negative

let fh_catalog () =
  let catalog = Catalog.create () in
  Catalog.add catalog Fixtures.flight;
  Catalog.add catalog Fixtures.hotel;
  catalog

let expect_ok what = function
  | Ok x -> x
  | Error e -> Alcotest.fail (what ^ ": " ^ Manager.error_message e)

let rec drive manager id turn =
  match turn with
  | Manager.Finished outcome -> outcome
  | Manager.Next q ->
      drive manager id
        (expect_ok "tell"
           (Manager.tell manager id (label_for fh_goal q.Engine.signature)))

(* One complete honest session: open, answer every question, close;
   returns the inferred predicate. *)
let open_and_drive manager strategy =
  let info =
    expect_ok "open"
      (Manager.open_session manager ~r:"Flight" ~p:"Hotel" ~strategy)
  in
  let outcome =
    drive manager info.Manager.id
      (expect_ok "ask" (Manager.ask manager info.Manager.id))
  in
  expect_ok "close" (Manager.close manager info.Manager.id);
  outcome.Engine.predicate

(* ----------------- domains × sessions ≡ sequential ----------------- *)

let test_concurrent_converges () =
  (* Sequential reference run, one predicate per strategy. *)
  let seq_manager = Manager.create (fh_catalog ()) in
  let expected_td = open_and_drive seq_manager "td" in
  let expected_bu = open_and_drive seq_manager "bu" in
  let manager = Manager.create ~shards:8 (fh_catalog ()) in
  let n_domains = 4 and per_domain = 8 in
  let domains =
    List.init n_domains (fun d ->
        Domain.spawn (fun () ->
            List.init per_domain (fun i ->
                let strategy = if (d + i) mod 2 = 0 then "td" else "bu" in
                (strategy, open_and_drive manager strategy))))
  in
  let outcomes = List.concat_map Domain.join domains in
  Alcotest.(check int) "every session ran" (n_domains * per_domain)
    (List.length outcomes);
  List.iter
    (fun (strategy, theta) ->
      let expected =
        if String.equal strategy "td" then expected_td else expected_bu
      in
      Alcotest.check bits_testable
        ("concurrent θ matches sequential (" ^ strategy ^ ")")
        expected theta)
    outcomes;
  (* No leaks: every session was closed. *)
  Alcotest.(check int) "no sessions leak" 0 (Manager.session_count manager);
  Alcotest.(check (list string)) "no ids leak" [] (Manager.session_ids manager);
  let stats = Manager.stats manager in
  Alcotest.(check int) "opened counted" (n_domains * per_domain)
    stats.Manager.opened;
  Alcotest.(check int) "closed counted" (n_domains * per_domain)
    stats.Manager.closed;
  Alcotest.(check int) "live zero" 0 stats.Manager.live;
  (* Shard stats sum to global stats, exactly. *)
  let summed =
    List.fold_left Manager.add_stats Manager.zero_stats
      (Manager.shard_stats manager)
  in
  Alcotest.(check bool) "shard stats sum to global" true (summed = stats);
  (* Concurrent opens over one pair still build the universe once. *)
  let hits, misses = Catalog.stats (Manager.catalog manager) in
  Alcotest.(check int) "one universe build" 1 misses;
  Alcotest.(check int) "every other open hit" ((n_domains * per_domain) - 1) hits;
  let cat_hits, cat_misses =
    List.fold_left
      (fun (h, m) (sh, sm) -> (h + sh, m + sm))
      (0, 0)
      (Catalog.shard_stats (Manager.catalog manager))
  in
  Alcotest.(check (pair int int)) "catalog shard stats sum to global"
    (hits, misses) (cat_hits, cat_misses)

(* ------------------------------ pool ------------------------------- *)

let test_pool_accounting () =
  let pool = Pool.create ~workers:2 () in
  Alcotest.(check int) "workers clamped" 2 (Pool.workers pool);
  let results = List.init 50 (fun i -> Pool.submit pool (fun () -> i * i)) in
  List.iteri
    (fun i outcome ->
      match outcome with
      | Pool.Done v -> Alcotest.(check int) "job result" (i * i) v
      | Pool.Shed -> Alcotest.fail "unexpected shed")
    results;
  (* A job's exception resurfaces in the caller; the worker survives. *)
  (match Pool.submit pool (fun () -> failwith "boom") with
  | exception Failure msg -> Alcotest.(check string) "re-raised" "boom" msg
  | Pool.Done _ | Pool.Shed -> Alcotest.fail "expected the job's exception");
  (match Pool.submit pool (fun () -> 7) with
  | Pool.Done v -> Alcotest.(check int) "worker survived the raise" 7 v
  | Pool.Shed -> Alcotest.fail "unexpected shed");
  Pool.shutdown pool;
  let st = Pool.stats pool in
  Alcotest.(check int) "submitted" 52 st.Pool.submitted;
  Alcotest.(check int) "completed" 52 st.Pool.completed;
  Alcotest.(check int) "nothing shed" 0 st.Pool.shed;
  match Pool.submit pool (fun () -> 0) with
  | Pool.Shed -> ()
  | Pool.Done _ -> Alcotest.fail "a closed pool must shed"

(* Deterministic backpressure: gate the single worker, fill the
   1-deep queue, and watch the next request shed. *)
let test_pool_backpressure () =
  let pool = Pool.create ~capacity:1 ~workers:1 () in
  let gate = Mutex.create () in
  let started = Mutex.create () in
  let started_c = Condition.create () in
  let running = ref false in
  Mutex.lock gate;
  let accepted1 =
    Pool.async pool (fun () ->
        Mutex.lock started;
        running := true;
        Condition.signal started_c;
        Mutex.unlock started;
        (* Park on the gate until the test releases it. *)
        Mutex.lock gate;
        Mutex.unlock gate)
  in
  Alcotest.(check bool) "job 1 accepted" true accepted1;
  (* Wait until the worker holds job 1, so the queue is empty again. *)
  Mutex.lock started;
  while not !running do
    Condition.wait started_c started
  done;
  Mutex.unlock started;
  Alcotest.(check bool) "job 2 fills the queue" true
    (Pool.async pool (fun () -> ()));
  Alcotest.(check bool) "job 3 is shed" false (Pool.async pool (fun () -> ()));
  Mutex.unlock gate;
  Pool.shutdown pool;
  let st = Pool.stats pool in
  Alcotest.(check int) "two accepted" 2 st.Pool.submitted;
  Alcotest.(check int) "both completed" 2 st.Pool.completed;
  Alcotest.(check int) "exactly one shed" 1 st.Pool.shed;
  Alcotest.(check int) "queue never exceeded capacity" 1 st.Pool.max_depth

let test_busy_frame () =
  match Service.busy () with
  | P.Error { code = "busy"; _ } -> ()
  | _ -> Alcotest.fail "busy must be a typed error frame"

(* ---------------------------- listener ----------------------------- *)

let with_listener ?max_frame f =
  let manager = Manager.create (fh_catalog ()) in
  let pool = Pool.create ~workers:2 () in
  let path = Filename.temp_file "jqi_sock" ".sock" in
  let listener =
    Listener.start ?max_frame ~pool manager (Listener.Unix_path path)
  in
  Fun.protect
    ~finally:(fun () ->
      Listener.stop listener;
      Pool.shutdown pool;
      if Sys.file_exists path then Sys.remove path)
    (fun () -> f manager listener path)

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  (Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)

let send oc line =
  output_string oc line;
  output_char oc '\n';
  flush oc

let close_quietly oc = try close_out oc with Sys_error _ -> ()

let rpc ic oc next_id request =
  incr next_id;
  send oc (P.encode_request ~id:!next_id request);
  match P.decode_response (input_line ic) with
  | Ok (_, response) -> response
  | Error _ -> Alcotest.fail "undecodable reply from the listener"

(* Drive one full session over an established connection. *)
let drive_connection ic oc =
  let next_id = ref 0 in
  let call request = rpc ic oc next_id request in
  let session =
    match call (P.Open_session { r = "Flight"; p = "Hotel"; strategy = "td" }) with
    | P.Opened { session; _ } -> session
    | _ -> Alcotest.fail "open over the wire"
  in
  let rec loop response =
    match response with
    | P.Question { q_r_row; q_p_row; _ } ->
        let s =
          Sample.signature_of_tuple fh_omega Fixtures.flight Fixtures.hotel
            (q_r_row, q_p_row)
        in
        loop (call (P.Tell { session; label = label_for fh_goal s }))
    | P.Done { predicate; _ } ->
        (match call (P.Close { session }) with
        | P.Closed _ -> ()
        | _ -> Alcotest.fail "close over the wire");
        predicate
    | _ -> Alcotest.fail "unexpected turn over the wire"
  in
  loop (call (P.Ask { session }))

let test_listener_end_to_end () =
  with_listener (fun manager listener path ->
      let ic, oc = connect path in
      let next_id = ref 0 in
      let call request = rpc ic oc next_id request in
      (match call (P.Hello { versions = [ 1; 9 ] }) with
      | P.Welcome { version = 1 } -> ()
      | _ -> Alcotest.fail "hello over the wire");
      Alcotest.(check (list (pair string string)))
        "θ inferred over the socket" [ ("To", "City") ] (drive_connection ic oc);
      Alcotest.(check int) "one connection live" 1 (Listener.connections listener);
      (* Garbage earns an error frame and the connection survives. *)
      send oc "this is not json";
      (match P.decode_response (input_line ic) with
      | Ok (0, P.Error { code = "parse"; _ }) -> ()
      | _ -> Alcotest.fail "garbage must earn a parse error frame");
      (match call P.Stats with
      | P.Stats_reply { sessions = 0; _ } -> ()
      | _ -> Alcotest.fail "connection must survive garbage");
      Alcotest.(check int) "no sessions left behind" 0
        (Manager.session_count manager);
      close_quietly oc)

let test_listener_overflow_disconnects () =
  with_listener ~max_frame:128 (fun _manager _listener path ->
      let ic, oc = connect path in
      send oc (String.make 1000 'x');
      (match P.decode_response (input_line ic) with
      | Ok (0, P.Error { code = "overflow"; _ }) -> ()
      | _ -> Alcotest.fail "oversized line must earn an overflow frame");
      (match input_line ic with
      | exception End_of_file -> ()
      | _ -> Alcotest.fail "server must disconnect after an overflow");
      close_quietly oc)

let test_listener_concurrent_clients () =
  with_listener (fun manager _listener path ->
      let n = 6 in
      let results = Array.make n [] in
      let client i () =
        let ic, oc = connect path in
        results.(i) <- drive_connection ic oc;
        close_quietly oc
      in
      let threads = List.init n (fun i -> Thread.create (client i) ()) in
      List.iter Thread.join threads;
      Array.iter
        (fun predicate ->
          Alcotest.(check (list (pair string string)))
            "every concurrent client converged" [ ("To", "City") ] predicate)
        results;
      Alcotest.(check int) "no sessions leak" 0 (Manager.session_count manager);
      let hits, misses = Catalog.stats (Manager.catalog manager) in
      Alcotest.(check int) "one build across clients" 1 misses;
      Alcotest.(check int) "other clients hit the cache" (n - 1) hits)

(* --------------------------- race hammer --------------------------- *)

(* Random interleavings of every manager operation from four domains:
   nothing may raise, sessions may not corrupt each other, and the exact
   shard accounting must balance afterwards. *)
let hammer seed =
  let tick = Atomic.make 0 in
  let manager =
    Manager.create
      ~clock:(fun () -> float_of_int (Atomic.get tick))
      ~idle_timeout:5. ~shards:4 (fh_catalog ())
  in
  let ids = Array.init 10 (fun i -> Printf.sprintf "s%d" (i + 1)) in
  let run_ops prng =
    for _ = 1 to 60 do
      let id = Prng.pick prng ids in
      match Prng.int prng 8 with
      | 0 ->
          ignore
            (Manager.open_session manager ~r:"Flight" ~p:"Hotel"
               ~strategy:(if Prng.bool prng then "td" else "bu"))
      | 1 -> ignore (Manager.ask manager id)
      | 2 ->
          ignore (Manager.tell manager id (Sample.label_of_bool (Prng.bool prng)))
      | 3 -> (
          match Manager.save manager id with
          | Ok doc ->
              ignore (Manager.resume_session manager ~r:"Flight" ~p:"Hotel" doc)
          | Error _ -> ())
      | 4 -> ignore (Manager.close manager id)
      | 5 ->
          ignore (Atomic.fetch_and_add tick 1);
          ignore (Manager.sweep manager)
      | 6 -> ignore (Manager.evicted_doc manager id)
      | _ ->
          ignore (Manager.stats manager);
          ignore (Manager.session_ids manager)
    done
  in
  let domains =
    List.init 4 (fun d -> Domain.spawn (fun () -> run_ops (Prng.create (seed + d))))
  in
  List.iter Domain.join domains;
  let stats = Manager.stats manager in
  let summed =
    List.fold_left Manager.add_stats Manager.zero_stats
      (Manager.shard_stats manager)
  in
  summed = stats
  && stats.Manager.live = Manager.session_count manager
  && List.length (Manager.session_ids manager) = stats.Manager.live
  && stats.Manager.live
     = stats.Manager.opened + stats.Manager.resumed - stats.Manager.closed
       - stats.Manager.evicted
  && List.for_all
       (fun id ->
         match Manager.ask manager id with Ok _ -> true | Error _ -> false)
       (Manager.session_ids manager)

let qcheck_race_hammer =
  QCheck.Test.make
    ~name:"race hammer: random op interleavings never raise or corrupt"
    ~count:5
    (QCheck.make QCheck.Gen.(int_bound 10_000) ~print:string_of_int)
    hammer

let suite =
  [
    Alcotest.test_case "domains x sessions converge to sequential θ" `Quick
      test_concurrent_converges;
    Alcotest.test_case "pool accounting and exceptions" `Quick
      test_pool_accounting;
    Alcotest.test_case "pool backpressure sheds deterministically" `Quick
      test_pool_backpressure;
    Alcotest.test_case "busy frame is typed" `Quick test_busy_frame;
    Alcotest.test_case "listener end-to-end over unix socket" `Quick
      test_listener_end_to_end;
    Alcotest.test_case "listener overflow disconnects cleanly" `Quick
      test_listener_overflow_disconnects;
    Alcotest.test_case "listener serves concurrent clients" `Quick
      test_listener_concurrent_clients;
    QCheck_alcotest.to_alcotest qcheck_race_hammer;
  ]
