(* Stats, ASCII tables, charts, timers. *)

module Stats = Jqi_util.Stats
module Table = Jqi_util.Ascii_table
module Chart = Jqi_util.Chart
module Timer = Jqi_util.Timer

let feq = Alcotest.(check (float 1e-9))

let test_mean_variance () =
  feq "mean" 2.5 (Stats.mean [| 1.; 2.; 3.; 4. |]);
  feq "variance" (5. /. 3.) (Stats.variance [| 1.; 2.; 3.; 4. |]);
  feq "stddev" (sqrt (5. /. 3.)) (Stats.stddev [| 1.; 2.; 3.; 4. |]);
  feq "variance of singleton" 0. (Stats.variance [| 5. |]);
  Alcotest.(check bool) "mean of empty is nan" true
    (Float.is_nan (Stats.mean [||]))

let test_median_percentile () =
  feq "median odd" 3. (Stats.median [| 5.; 1.; 3. |]);
  feq "median even" 2.5 (Stats.median [| 4.; 1.; 2.; 3. |]);
  feq "p0 is min" 1. (Stats.percentile [| 4.; 1.; 2.; 3. |] 0.);
  feq "p100 is max" 4. (Stats.percentile [| 4.; 1.; 2.; 3. |] 100.);
  feq "p25 interpolates" 1.75 (Stats.percentile [| 4.; 1.; 2.; 3. |] 25.);
  feq "percentile of singleton" 7. (Stats.percentile [| 7. |] 50.)

let test_percentile_edge_cases () =
  Alcotest.(check bool) "empty is nan" true
    (Float.is_nan (Stats.percentile [||] 50.));
  feq "singleton p0" 7. (Stats.percentile [| 7. |] 0.);
  feq "singleton p100" 7. (Stats.percentile [| 7. |] 100.);
  let raises p =
    try
      ignore (Stats.percentile [| 1.; 2. |] p);
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "p < 0 raises" true (raises (-1.));
  Alcotest.(check bool) "p > 100 raises" true (raises 101.);
  Alcotest.(check bool) "nan raises" true (raises nan)

let test_quantile () =
  feq "q0 is min" 1. (Stats.quantile [| 4.; 1.; 2.; 3. |] 0.);
  feq "q1 is max" 4. (Stats.quantile [| 4.; 1.; 2.; 3. |] 1.);
  feq "q0.5 is median" 2.5 (Stats.quantile [| 4.; 1.; 2.; 3. |] 0.5);
  feq "quantile = percentile"
    (Stats.percentile [| 9.; 5.; 7. |] 25.)
    (Stats.quantile [| 9.; 5.; 7. |] 0.25);
  Alcotest.(check bool) "q > 1 raises" true
    (try
       ignore (Stats.quantile [| 1. |] 1.5);
       false
     with Invalid_argument _ -> true)

let test_min_max_summary () =
  let lo, hi = Stats.min_max [| 3.; -1.; 7.; 0. |] in
  feq "min" (-1.) lo;
  feq "max" 7. hi;
  let s = Stats.summarize [| 1.; 2.; 3. |] in
  Alcotest.(check int) "n" 3 s.n;
  feq "summary mean" 2. s.mean;
  feq "summary median" 2. s.median

let test_of_ints () =
  Alcotest.(check (array (float 0.))) "of_ints" [| 1.; 2. |] (Stats.of_ints [| 1; 2 |])

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_table_alignment () =
  let rendered =
    Table.render ~headers:[ "a"; "bb" ] [ [ "x"; "1" ]; [ "longer"; "22" ] ]
  in
  let lines = String.split_on_char '\n' rendered in
  (* All non-empty lines have equal width. *)
  let widths =
    List.filter_map
      (fun l -> if l = "" then None else Some (String.length l))
      lines
  in
  Alcotest.(check bool) "rectangular" true
    (List.for_all (( = ) (List.hd widths)) widths);
  Alcotest.(check bool) "contains cell" true (contains rendered "longer")

let test_table_short_rows_padded () =
  let rendered = Table.render ~headers:[ "a"; "b"; "c" ] [ [ "only" ] ] in
  Alcotest.(check bool) "renders without exception" true
    (contains rendered "only")

let test_table_alignments () =
  let rendered =
    Table.render
      ~aligns:[| Table.Right; Table.Center |]
      ~headers:[ "num"; "mid" ]
      [ [ "1"; "x" ] ]
  in
  Alcotest.(check bool) "right-aligned number" true (contains rendered "   1 ")

let test_chart () =
  let rendered =
    Chart.render_grouped ~title:"T" ~value_label:"v"
      [
        { Chart.label = "g1"; values = [ ("a", 10.); ("b", 0.) ] };
        { Chart.label = "g2"; values = [ ("a", 5.) ] };
      ]
  in
  Alcotest.(check bool) "has title" true (contains rendered "T");
  Alcotest.(check bool) "has bars" true (contains rendered "#");
  (* Zero value renders no bar but still a row. *)
  Alcotest.(check bool) "zero row present" true (contains rendered "b");
  (* All-zero chart should not divide by zero. *)
  let flat =
    Chart.render_grouped ~title:"flat" ~value_label:"v"
      [ { Chart.label = "g"; values = [ ("a", 0.) ] } ]
  in
  Alcotest.(check bool) "flat ok" true (contains flat "flat")

let test_timer () =
  let (), dt = Timer.time (fun () -> ignore (Sys.opaque_identity (Array.make 1000 0))) in
  Alcotest.(check bool) "non-negative" true (dt >= 0.);
  let t = Timer.create () in
  Timer.start t;
  ignore (Sys.opaque_identity (Array.make 1000 0));
  Timer.stop t;
  let e1 = Timer.elapsed t in
  Alcotest.(check bool) "accumulated" true (e1 >= 0.);
  Timer.start t;
  Timer.stop t;
  Alcotest.(check bool) "monotone accumulation" true (Timer.elapsed t >= e1);
  Timer.reset t;
  feq "reset" 0. (Timer.elapsed t)

(* [Timer.now] must never step backwards — span arithmetic in jqi.obs and
   every elapsed-time figure depends on it. *)
let test_timer_monotonic () =
  let prev = ref (Timer.now ()) in
  for _ = 1 to 10_000 do
    let t = Timer.now () in
    if t < !prev then
      Alcotest.failf "Timer.now stepped back: %.9f after %.9f" t !prev;
    prev := t
  done

let test_pp_seconds () =
  Alcotest.(check string) "micro" "500µs" (Fmt.str "%a" Timer.pp_seconds 0.0005);
  Alcotest.(check string) "milli" "12.0ms" (Fmt.str "%a" Timer.pp_seconds 0.012);
  Alcotest.(check string) "sec" "2.50s" (Fmt.str "%a" Timer.pp_seconds 2.5)

let suite =
  [
    Alcotest.test_case "mean/variance" `Quick test_mean_variance;
    Alcotest.test_case "median/percentile" `Quick test_median_percentile;
    Alcotest.test_case "percentile edge cases" `Quick test_percentile_edge_cases;
    Alcotest.test_case "quantile" `Quick test_quantile;
    Alcotest.test_case "min/max/summary" `Quick test_min_max_summary;
    Alcotest.test_case "of_ints" `Quick test_of_ints;
    Alcotest.test_case "table alignment" `Quick test_table_alignment;
    Alcotest.test_case "table short rows" `Quick test_table_short_rows_padded;
    Alcotest.test_case "table explicit aligns" `Quick test_table_alignments;
    Alcotest.test_case "chart rendering" `Quick test_chart;
    Alcotest.test_case "timer" `Quick test_timer;
    Alcotest.test_case "timer monotonic" `Quick test_timer_monotonic;
    Alcotest.test_case "pp_seconds" `Quick test_pp_seconds;
  ]
