(* Differential suite for the profile-quotient universe construction:
   [Universe.build_quotient] and [Universe.build_parallel] must reproduce
   the reference per-pair scan [Universe.build_naive] exactly — classes,
   counts, representatives and join ratio — on random instances including
   NULL-heavy, duplicate-heavy, NaN-bearing, single-row and all-NULL-column
   ones.  Plus unit coverage of the value dictionary ([Dict]): NULL and NaN
   are never coded, types never share codes, and IEEE zero equality is
   honoured. *)

module Bits = Jqi_util.Bits
module Value = Jqi_relational.Value
module Schema = Jqi_relational.Schema
module Tuple = Jqi_relational.Tuple
module Relation = Jqi_relational.Relation
module Dict = Jqi_relational.Dict
module Omega = Jqi_core.Omega
module Universe = Jqi_core.Universe
module Tsig = Jqi_core.Tsig

(* Full structural agreement of two universes; returns false (rather than
   raising) so it can sit inside qcheck properties. *)
let universes_agree u1 u2 =
  Int.equal (Universe.n_classes u1) (Universe.n_classes u2)
  && Int.equal (Universe.total_tuples u1) (Universe.total_tuples u2)
  && Float.equal (Universe.join_ratio u1) (Universe.join_ratio u2)
  &&
  let rec go i =
    i >= Universe.n_classes u1
    || Bits.equal (Universe.signature u1 i) (Universe.signature u2 i)
       && Int.equal (Universe.count u1 i) (Universe.count u2 i)
       && (let rep1 = (Universe.cls u1 i).Universe.rep
           and rep2 = (Universe.cls u2 i).Universe.rep in
           Int.equal rep1.(0) rep2.(0) && Int.equal rep1.(1) rep2.(1))
       && go (i + 1)
  in
  go 0

let check_agree label u1 u2 =
  Alcotest.(check bool) label true (universes_agree u1 u2)

let relation_of name prefix rows =
  let arity = Tuple.arity (List.hd rows) in
  Relation.of_list ~name
    ~schema:
      (Schema.of_names ~ty:Value.TInt
         (List.init arity (fun i -> Printf.sprintf "%s%d" prefix i)))
    rows

let all_builders r p =
  ( Universe.build_naive r p,
    Universe.build_quotient r p,
    Universe.build_parallel ~domains:3 r p )

(* ------------------------- deterministic edges -------------------- *)

let test_single_row () =
  let r = relation_of "r" "a" [ Tuple.ints [ 7; 7 ] ] in
  let p = relation_of "p" "b" [ Tuple.ints [ 7 ] ] in
  let n, q, par = all_builders r p in
  check_agree "quotient = naive" n q;
  check_agree "parallel = naive" n par;
  Alcotest.(check int) "one class" 1 (Universe.n_classes q)

let test_all_null_column () =
  (* A column of NULLs matches nothing: it must not contribute bits, and
     rows differing only in other columns' NULLs still group correctly. *)
  let null_row v = Tuple.of_list [ Value.Null; Value.Int v ] in
  let r = relation_of "r" "a" [ null_row 1; null_row 1; null_row 2 ] in
  let p =
    relation_of "p" "b"
      [ Tuple.of_list [ Value.Int 1 ]; Tuple.of_list [ Value.Null ] ]
  in
  let n, q, par = all_builders r p in
  check_agree "quotient = naive" n q;
  check_agree "parallel = naive" n par;
  Alcotest.(check int) "|D| preserved" 6 (Universe.total_tuples q)

let test_duplicate_heavy () =
  (* Three distinct rows repeated many times: the quotient sees 3 × 2
     profile pairs for a 36-pair product, and multiplicities must land on
     the same classes the scan finds. *)
  let reps = List.concat_map (fun v -> [ v; v; v; v ]) [ [ 1; 2 ]; [ 2; 1 ]; [ 1; 1 ] ] in
  let r = relation_of "r" "a" (List.map Tuple.ints reps) in
  let p = relation_of "p" "b" (List.map Tuple.ints [ [ 1 ]; [ 1 ]; [ 2 ] ]) in
  let n, q, par = all_builders r p in
  check_agree "quotient = naive" n q;
  check_agree "parallel = naive" n par;
  Alcotest.(check int) "|D| = 36" 36 (Universe.total_tuples q)

let test_nan_never_matches () =
  (* NaN behaves like NULL under Value.eq; the dictionary must not give it
     a code (an interned NaN could never be found again, leaking fresh
     codes), and the quotient must agree with the scan. *)
  let fr v = Tuple.of_list [ Value.Float v ] in
  let r = relation_of "r" "a" [ fr Float.nan; fr 1.0; fr Float.nan ] in
  let p = relation_of "p" "b" [ fr Float.nan; fr 1.0 ] in
  let n, q, par = all_builders r p in
  check_agree "quotient = naive" n q;
  check_agree "parallel = naive" n par;
  (* Exactly one matching pair: 1.0 with 1.0. *)
  let matching = Omega.of_pairs (Universe.omega q) [ (0, 0) ] in
  match Universe.find_class q matching with
  | None -> Alcotest.fail "expected the 1.0 = 1.0 class"
  | Some i -> Alcotest.(check int) "one matching pair" 1 (Universe.count q i)

let test_mixed_zero () =
  (* IEEE: 0.0 = -0.0, so they must share a dictionary code and join. *)
  let fr v = Tuple.of_list [ Value.Float v ] in
  let r = relation_of "r" "a" [ fr 0.0 ] in
  let p = relation_of "p" "b" [ fr (-0.0) ] in
  let n, q, _ = all_builders r p in
  check_agree "quotient = naive" n q;
  Alcotest.(check int) "0.0 joins -0.0" 1
    (List.length
       (Universe.selected_classes q (Omega.of_pairs (Universe.omega q) [ (0, 0) ])))

(* ------------------------- qcheck differential -------------------- *)

(* Mixed-type cells over small pools so duplicates, NULLs, NaNs and
   cross-type near-collisions (Int 1 vs Float 1. vs Str "1") all occur. *)
let gen_cell =
  QCheck.Gen.(
    frequency
      [
        (5, map (fun i -> Value.Int i) (int_bound 3));
        (2, return Value.Null);
        (1, map (fun b -> Value.Bool b) bool);
        (1, map (fun i -> Value.Float (float_of_int i)) (int_bound 2));
        (1, return (Value.Float Float.nan));
        (1, map (fun i -> Value.Str (String.make 1 (Char.chr (49 + i)))) (int_bound 2));
      ])

let gen_instance =
  QCheck.Gen.(
    let row arity = map Tuple.of_list (list_repeat arity gen_cell) in
    let* ra = int_range 1 3 and* pa = int_range 1 3 in
    (* Draw rows from a small pool so profiles repeat (the duplicate-heavy
       regime the quotient exploits), but keep fully random instances in
       the mix too. *)
    let rows_of arity =
      let* dup = bool in
      if dup then
        let* pool = list_size (int_range 1 3) (row arity) in
        list_size (int_range 1 12) (oneofl pool)
      else list_size (int_range 1 10) (row arity)
    in
    let* rrows = rows_of ra and* prows = rows_of pa in
    return (rrows, prows))

let qcheck_quotient_equals_naive =
  QCheck.Test.make ~name:"build_quotient = build_naive = build_parallel"
    ~count:400 (QCheck.make gen_instance)
    (fun (rrows, prows) ->
      let r = relation_of "r" "a" rrows and p = relation_of "p" "b" prows in
      let n, q, par = all_builders r p in
      universes_agree n q && universes_agree n par)

let qcheck_signatures_match_reps =
  QCheck.Test.make ~name:"quotient class signatures = T(representative)"
    ~count:200 (QCheck.make gen_instance)
    (fun (rrows, prows) ->
      let r = relation_of "r" "a" rrows and p = relation_of "p" "b" prows in
      let u = Universe.build_quotient r p in
      let omega = Universe.omega u in
      let rec go i =
        i >= Universe.n_classes u
        ||
        let rep = (Universe.cls u i).Universe.rep in
        let ri = rep.(0) and pj = rep.(1) in
        Bits.equal (Universe.signature u i)
          (Tsig.of_tuples omega (Relation.row r ri) (Relation.row p pj))
        && go (i + 1)
      in
      go 0)

(* ------------------------- sampled determinism -------------------- *)

let test_sampled_reps_deterministic () =
  (* ISSUE 4 satellite: [build_sampled] must pick the lexicographically
     smallest representative among the sampled members of a class, so a
     sample that (with overwhelming probability) covers the whole 3×3
     product reproduces [build] exactly — for every seed, i.e. regardless
     of PRNG draw order.  The old keep-first-drawn rule made reps depend
     on the seed and fail this.  Counts are sample frequencies (not true
     multiplicities), so only classes and representatives are compared. *)
  let r = relation_of "r" "a" (List.map Tuple.ints [ [ 1 ]; [ 1 ]; [ 2 ] ]) in
  let p = relation_of "p" "b" (List.map Tuple.ints [ [ 1 ]; [ 2 ]; [ 1 ] ]) in
  let reference = Universe.build r p in
  List.iter
    (fun seed ->
      let sampled =
        Universe.build_sampled (Jqi_util.Prng.create seed) ~pairs:3000 r p
      in
      let label fmt =
        Printf.ksprintf (fun s -> Printf.sprintf "seed %d: %s" seed s) fmt
      in
      Alcotest.(check int)
        (label "classes")
        (Universe.n_classes reference)
        (Universe.n_classes sampled);
      for i = 0 to Universe.n_classes reference - 1 do
        Alcotest.(check bool)
          (label "signature %d" i)
          true
          (Bits.equal (Universe.signature reference i)
             (Universe.signature sampled i));
        Alcotest.(check (array int))
          (label "rep %d" i)
          (Universe.cls reference i).Universe.rep
          (Universe.cls sampled i).Universe.rep
      done)
    [ 1; 2; 3; 4; 5 ]

(* ------------------------- dict unit suite ------------------------ *)

let test_dict_null_nan_uncoded () =
  let d = Dict.create () in
  Alcotest.(check int) "NULL uncoded" Dict.no_code (Dict.code d Value.Null);
  Alcotest.(check int) "NaN uncoded" Dict.no_code
    (Dict.code d (Value.Float Float.nan));
  Alcotest.(check int) "nothing interned" 0 (Dict.size d);
  Alcotest.(check bool) "NULL not codable" false (Dict.codable Value.Null);
  Alcotest.(check bool) "NaN not codable" false
    (Dict.codable (Value.Float Float.nan))

let test_dict_codes_follow_eq () =
  let d = Dict.create () in
  let c1 = Dict.code d (Value.Int 1) in
  Alcotest.(check int) "stable code" c1 (Dict.code d (Value.Int 1));
  (* Cross-type: Int 1, Float 1., Str "1", Bool true never share codes,
     exactly as Value.eq never crosses types. *)
  let codes =
    List.map (Dict.code d)
      [ Value.Int 1; Value.Float 1.0; Value.Str "1"; Value.Bool true ]
  in
  let distinct = List.sort_uniq Int.compare codes in
  Alcotest.(check int) "four distinct codes" 4 (List.length distinct);
  Alcotest.(check int) "four values interned" 4 (Dict.size d);
  (* IEEE zero: 0.0 and -0.0 are join-equal, one code. *)
  Alcotest.(check int) "0.0 = -0.0"
    (Dict.code d (Value.Float 0.0))
    (Dict.code d (Value.Float (-0.0)))

let test_dict_find_read_only () =
  let d = Dict.create () in
  Alcotest.(check int) "find before intern" Dict.no_code
    (Dict.find d (Value.Str "x"));
  Alcotest.(check int) "find did not intern" 0 (Dict.size d);
  let c = Dict.code d (Value.Str "x") in
  Alcotest.(check int) "find after intern" c (Dict.find d (Value.Str "x"))

let test_dict_encoding () =
  let d = Dict.create () in
  let rel =
    relation_of "r" "a"
      [
        Tuple.of_list [ Value.Int 1; Value.Null ];
        Tuple.of_list [ Value.Int 2; Value.Int 1 ];
      ]
  in
  let rows = Dict.encode_rows d rel in
  Alcotest.(check int) "row-major shape" 2 (Array.length rows);
  Alcotest.(check int) "null slot" Dict.no_code rows.(0).(1);
  Alcotest.(check int) "shared code space" rows.(0).(0) rows.(1).(1);
  let col0 = Dict.encode_column d rel 0 in
  Alcotest.(check (array int)) "column agrees with rows"
    [| rows.(0).(0); rows.(1).(0) |]
    col0;
  Alcotest.(check bool) "bad column raises" true
    (try ignore (Dict.encode_column d rel 9); false
     with Invalid_argument _ -> true)

let test_of_codes_matches_of_tuples () =
  let d = Dict.create () in
  let tr = Tuple.of_list [ Value.Int 1; Value.Null; Value.Str "x" ] in
  let tp = Tuple.of_list [ Value.Str "x"; Value.Int 1 ] in
  let omega = Omega.create ~n:3 ~m:2 () in
  let cr = Dict.encode_row d tr and cp = Dict.encode_row d tp in
  Alcotest.(check bool) "of_codes = of_tuples" true
    (Bits.equal (Tsig.of_tuples omega tr tp) (Tsig.of_codes omega cr cp));
  Alcotest.(check bool) "arity mismatch raises" true
    (try ignore (Tsig.of_codes omega cr [| 0 |]); false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "single row" `Quick test_single_row;
    Alcotest.test_case "all-NULL column" `Quick test_all_null_column;
    Alcotest.test_case "duplicate-heavy" `Quick test_duplicate_heavy;
    Alcotest.test_case "NaN never matches" `Quick test_nan_never_matches;
    Alcotest.test_case "IEEE zeros join" `Quick test_mixed_zero;
    Alcotest.test_case "sampled reps are draw-order independent" `Quick
      test_sampled_reps_deterministic;
    Alcotest.test_case "dict: NULL/NaN uncoded" `Quick test_dict_null_nan_uncoded;
    Alcotest.test_case "dict: codes follow Value.eq" `Quick
      test_dict_codes_follow_eq;
    Alcotest.test_case "dict: find is read-only" `Quick test_dict_find_read_only;
    Alcotest.test_case "dict: row/column encoding" `Quick test_dict_encoding;
    Alcotest.test_case "tsig: of_codes = of_tuples" `Quick
      test_of_codes_matches_of_tuples;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ qcheck_quotient_equals_naive; qcheck_signatures_match_reps ]
