(* The lattice of join predicates (§4.2, Figure 4). *)

open Fixtures
module Bits = Jqi_util.Bits
module Lattice = Jqi_core.Lattice
module Universe = Jqi_core.Universe
module Omega = Jqi_core.Omega

let sigs0 = Universe.signatures universe0

let test_figure4_node_count () =
  (* The non-nullable lattice of Example 2.1: ∅, the 6 singletons, all
     pairs under some signature, and the 3 triples.  (Figure 4 draws a
     subset of the pair nodes for space; the true count, derivable by
     closing the 12 signatures of Figure 3 under subsets, is
     1 + 6 + 12 + 3 = 22.)  Cross-check against a direct enumeration of
     PP(Ω). *)
  let by_enumeration =
    List.length
      (List.filter (Lattice.non_nullable sigs0) (Omega.all_predicates omega0))
  in
  Alcotest.(check int) "22 non-nullable nodes" 22 by_enumeration;
  Alcotest.(check int) "non_nullable_count agrees" by_enumeration
    (Lattice.non_nullable_count sigs0)

let test_maximal_signatures () =
  (* The ⊆-maximal signatures are the three size-3 ones (the examples §4.3
     names for TD) plus the four size-2 signatures with no size-3
     superset: {(A1,B1),(A2,B2)}, {(A1,B3),(A2,B3)}, {(A1,B1),(A2,B1)},
     {(A2,B2),(A2,B3)}. *)
  let maximal = Lattice.maximal_signatures sigs0 in
  Alcotest.(check int) "seven maximal" 7 (List.length maximal);
  List.iter
    (fun pairs ->
      Alcotest.(check bool)
        (Printf.sprintf "maximal %s" (Omega.pred_to_string omega0 (pred0 pairs)))
        true
        (List.exists (Bits.equal (pred0 pairs)) maximal))
    [
      [ (0, 2); (1, 0); (1, 1) ] (* T(t1,t'1) *);
      [ (0, 1); (0, 2); (1, 0) ] (* T(t2,t'3) *);
      [ (0, 0); (0, 1); (1, 2) ] (* T(t4,t'1) *);
    ]

let test_minimal_signatures () =
  (* The unique minimal signature is ∅ (tuple (t3,t'1)). *)
  match Lattice.minimal_signatures sigs0 with
  | [ s ] -> Alcotest.(check bool) "empty" true (Bits.is_empty s)
  | l -> Alcotest.failf "expected one minimal, got %d" (List.length l)

let test_non_nullable () =
  Alcotest.(check bool) "∅ non-nullable" true
    (Lattice.non_nullable sigs0 (pred0 []));
  Alcotest.(check bool) "θ0 non-nullable" true
    (Lattice.non_nullable sigs0 (pred0 [ (0, 0); (1, 2) ]));
  Alcotest.(check bool) "Ω nullable here" false
    (Lattice.non_nullable sigs0 (Omega.full omega0))

let test_covers () =
  let nodes = [ pred0 []; pred0 [ (0, 0) ]; pred0 [ (0, 0); (1, 2) ] ] in
  let covers = Lattice.covers nodes in
  (* A chain of three: two cover edges, no transitive edge. *)
  Alcotest.(check int) "two edges" 2 (List.length covers);
  Alcotest.(check bool) "no skip edge" false
    (List.exists
       (fun (lo, hi) ->
         Bits.equal lo (pred0 []) && Bits.equal hi (pred0 [ (0, 0); (1, 2) ]))
       covers)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_to_dot () =
  let dot = Lattice.to_dot omega0 universe0 in
  Alcotest.(check bool) "digraph" true (contains dot "digraph lattice");
  (* Signature nodes are boxed, Ω (nullable here) appears as ellipse. *)
  Alcotest.(check bool) "boxes" true (contains dot "shape=box");
  Alcotest.(check bool) "ellipses" true (contains dot "shape=ellipse")

let suite =
  [
    Alcotest.test_case "figure 4 node count" `Quick test_figure4_node_count;
    Alcotest.test_case "maximal signatures" `Quick test_maximal_signatures;
    Alcotest.test_case "minimal signatures" `Quick test_minimal_signatures;
    Alcotest.test_case "non-nullable test" `Quick test_non_nullable;
    Alcotest.test_case "cover edges" `Quick test_covers;
    Alcotest.test_case "dot export" `Quick test_to_dot;
  ]
