(* Bitsets: unit cases plus qcheck properties against a reference Set. *)

module Bits = Jqi_util.Bits
module IS = Set.Make (Int)

let bits = Fixtures.bits_testable

let test_empty_full () =
  let e = Bits.empty 10 and f = Bits.full 10 in
  Alcotest.(check bool) "empty is empty" true (Bits.is_empty e);
  Alcotest.(check int) "empty cardinal" 0 (Bits.cardinal e);
  Alcotest.(check int) "full cardinal" 10 (Bits.cardinal f);
  Alcotest.(check bool) "empty subset full" true (Bits.subset e f);
  Alcotest.(check bool) "full not subset empty" false (Bits.subset f e);
  Alcotest.check bits "complement of empty" f (Bits.complement e);
  Alcotest.check bits "complement of full" e (Bits.complement f)

let test_multiword () =
  (* Widths beyond one word exercise the word-array paths. *)
  let w = 150 in
  let s = Bits.of_list w [ 0; 62; 63; 64; 126; 127; 149 ] in
  Alcotest.(check int) "cardinal" 7 (Bits.cardinal s);
  Alcotest.(check (list int)) "elements" [ 0; 62; 63; 64; 126; 127; 149 ]
    (Bits.elements s);
  Alcotest.(check bool) "mem 64" true (Bits.mem s 64);
  Alcotest.(check bool) "mem 65" false (Bits.mem s 65);
  Alcotest.(check int) "full 150" 150 (Bits.cardinal (Bits.full w));
  Alcotest.check bits "complement twice" s (Bits.complement (Bits.complement s))

let test_add_remove () =
  let s = Bits.empty 5 in
  let s1 = Bits.add s 3 in
  Alcotest.(check bool) "added" true (Bits.mem s1 3);
  Alcotest.(check bool) "original untouched" false (Bits.mem s 3);
  Alcotest.check bits "remove undoes add" s (Bits.remove s1 3);
  Alcotest.check bits "add idempotent" s1 (Bits.add s1 3)

let test_bounds () =
  let s = Bits.empty 5 in
  Alcotest.check_raises "mem out of range"
    (Invalid_argument "Bits: index 5 out of width 5") (fun () ->
      ignore (Bits.mem s 5));
  Alcotest.check_raises "negative" (Invalid_argument "Bits: index -1 out of width 5")
    (fun () -> ignore (Bits.add s (-1)));
  Alcotest.check_raises "width mismatch" (Invalid_argument "Bits: width mismatch")
    (fun () -> ignore (Bits.union s (Bits.empty 6)))

let test_build () =
  let b = Bits.build 70 (fun set -> set 0; set 63; set 69; set 0) in
  Alcotest.check bits "equals of_list" (Bits.of_list 70 [ 0; 63; 69 ]) b;
  Alcotest.(check bool) "setter bounds" true
    (try ignore (Bits.build 5 (fun set -> set 5)); false
     with Invalid_argument _ -> true)

let test_subsets_count () =
  let s = Bits.of_list 8 [ 1; 3; 5 ] in
  let subs = Bits.subsets s in
  Alcotest.(check int) "2^3 subsets" 8 (List.length subs);
  List.iter
    (fun sub -> Alcotest.(check bool) "each is subset" true (Bits.subset sub s))
    subs;
  (* All distinct. *)
  let distinct =
    List.fold_left
      (fun acc x -> if List.exists (Bits.equal x) acc then acc else x :: acc)
      [] subs
  in
  Alcotest.(check int) "distinct" 8 (List.length distinct)

(* qcheck: random subsets of width <= 130 mirrored in an int Set. *)
let gen_ops =
  QCheck.Gen.(
    let* width = int_range 1 130 in
    let* elems = list_size (int_bound 40) (int_bound (width - 1)) in
    let* elems2 = list_size (int_bound 40) (int_bound (width - 1)) in
    return (width, elems, elems2))

let arb_ops = QCheck.make gen_ops

let mirror width l = (Bits.of_list width l, IS.of_list l)

let prop_mirror name f g =
  QCheck.Test.make ~name ~count:300 arb_ops (fun (w, l1, l2) ->
      let b1, s1 = mirror w l1 and b2, s2 = mirror w l2 in
      f b1 b2 = g s1 s2)

let qcheck_tests =
  [
    prop_mirror "union mirrors set union"
      (fun a b -> Bits.elements (Bits.union a b))
      (fun a b -> IS.elements (IS.union a b));
    prop_mirror "inter mirrors set inter"
      (fun a b -> Bits.elements (Bits.inter a b))
      (fun a b -> IS.elements (IS.inter a b));
    prop_mirror "diff mirrors set diff"
      (fun a b -> Bits.elements (Bits.diff a b))
      (fun a b -> IS.elements (IS.diff a b));
    prop_mirror "subset mirrors" Bits.subset IS.subset;
    prop_mirror "disjoint mirrors" Bits.disjoint IS.disjoint;
    prop_mirror "equal mirrors" Bits.equal IS.equal;
    QCheck.Test.make ~name:"cardinal mirrors" ~count:300 arb_ops
      (fun (w, l, _) ->
        let b, s = mirror w l in
        Bits.cardinal b = IS.cardinal s);
    QCheck.Test.make ~name:"equal implies same hash" ~count:300 arb_ops
      (fun (w, l, _) ->
        let b1 = Bits.of_list w l and b2 = Bits.of_list w (List.rev l) in
        Bits.equal b1 b2 && Bits.hash b1 = Bits.hash b2);
    QCheck.Test.make ~name:"compare is a total order consistent with equal"
      ~count:300 arb_ops
      (fun (w, l1, l2) ->
        let b1 = Bits.of_list w l1 and b2 = Bits.of_list w l2 in
        let c12 = Bits.compare b1 b2 and c21 = Bits.compare b2 b1 in
        if Bits.equal b1 b2 then c12 = 0 && c21 = 0
        else c12 <> 0 && c12 = -c21);
    QCheck.Test.make ~name:"fold visits each element once" ~count:300 arb_ops
      (fun (w, l, _) ->
        let b, s = mirror w l in
        Bits.fold (fun i acc -> acc + i) b 0 = IS.fold ( + ) s 0);
  ]

let suite =
  [
    Alcotest.test_case "empty and full" `Quick test_empty_full;
    Alcotest.test_case "multi-word widths" `Quick test_multiword;
    Alcotest.test_case "add/remove persistence" `Quick test_add_remove;
    Alcotest.test_case "bounds checking" `Quick test_bounds;
    Alcotest.test_case "build" `Quick test_build;
    Alcotest.test_case "subsets enumeration" `Quick test_subsets_count;
  ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_tests
