(* jqlint: one fixture per rule, the shallow-literal and Null exemptions,
   suppression scopes, baseline JSON round-trips, parse-error findings,
   and the clean-tree gate (the repo itself lints clean against
   lint.baseline). *)

module Driver = Jqi_lint.Driver
module Rules = Jqi_lint.Rules
module Finding = Jqi_lint.Finding
module Baseline = Jqi_lint.Baseline
module Json = Jqi_util.Json

(* Rule ids raised by [src] when linted as [path], in source order. *)
let rules_of ?(path = "lib/fixture/fixture.ml") src =
  List.map (fun (f : Finding.t) -> f.Finding.rule) (Driver.lint_source ~path src)

let check ?path name expected src =
  Alcotest.(check (list string)) name expected (rules_of ?path src)

(* --------------------------- rule fixtures -------------------------- *)

(* A module "handles Value" as soon as any identifier path mentions Value
   or Tuple; every R1 fixture does so via a type annotation. *)

let test_r1_poly_eq () =
  check "deep = flagged" [ "R1" ] "let f (a : Value.t) b = a = b";
  check "<> flagged" [ "R1" ] "let f (a : Value.t) b = a <> b";
  check "Null = Null flagged" [ "R1" ]
    "let _ = ignore (Jqi_relational.Value.Null = Jqi_relational.Value.Null)";
  check "= Value.Null flagged" [ "R1" ]
    "let f (a : Value.t) = a = Value.Null";
  check "compare flagged" [ "R1" ]
    "let f (a : Value.t) b = compare a b";
  check "Hashtbl.hash flagged" [ "R1" ]
    "let f (a : Value.t) = Hashtbl.hash a"

let test_r1_exemptions () =
  check "shallow int literal exempt" []
    "let f (a : Value.t) x = ignore a; x = 0";
  check "shallow [] exempt" []
    "let f (a : Value.t) xs = ignore a; xs = []";
  check "shallow None exempt" []
    "let f (a : Value.t) o = ignore a; o = None";
  check "module without Value mention unflagged" [] "let f a b = a = b";
  check ~path:"test/fixture.ml" "R1 skips test/" []
    "let f (a : Value.t) b = a = b"

let test_r2_partial_calls () =
  check "Hashtbl.find flagged" [ "R2" ] "let f h k = Hashtbl.find h k";
  check "List.hd flagged" [ "R2" ] "let f xs = List.hd xs";
  check "Option.get flagged" [ "R2" ] "let f o = Option.get o";
  check "functor map find flagged" [ "R2" ]
    "let f m k = Key_map.find k m";
  check "find_opt fine" [] "let f h k = Hashtbl.find_opt h k";
  check ~path:"bench/fixture.ml" "R2 is lib-only" []
    "let f xs = List.hd xs"

let test_r3_loops () =
  check "List.length in iter body" [ "R3" ]
    "let f xs = List.iter (fun x -> ignore (List.length xs + x)) xs";
  check "@ in fold body" [ "R3" ]
    "let f xs = List.fold_left (fun acc x -> acc @ [ x ]) [] xs";
  check "List.length in while body" [ "R3" ]
    "let f r xs = while !r do r := List.length xs > 0 done";
  check "List.length in for body" [ "R3" ]
    "let f xs = for _ = 1 to 3 do ignore (List.length xs) done";
  check "List.length outside loops fine" []
    "let f xs = List.length xs";
  check "hoisted binding fine" []
    "let f xs = let n = List.length xs in List.iter (fun x -> ignore (n + x)) xs"

let test_r4_nondeterminism () =
  check "Unix.gettimeofday flagged" [ "R4" ]
    "let t () = Unix.gettimeofday ()";
  check "Random flagged" [ "R4" ] "let r () = Random.int 10";
  check "Sys.time flagged" [ "R4" ] "let t () = Sys.time ()";
  check ~path:"lib/util/timer.ml" "timer.ml is the sanctioned clock" []
    "let now () = Unix.gettimeofday ()";
  check ~path:"lib/obs/obs.ml" "lib/obs may read the clock" []
    "let now () = Unix.gettimeofday ()"

let test_r5_printing () =
  check "Printf.printf flagged" [ "R5" ]
    {|let f () = Printf.printf "hi"|};
  check "print_endline flagged" [ "R5" ]
    {|let f () = print_endline "hi"|};
  check ~path:"lib/util/ascii_table.ml" "renderer may print" []
    {|let f () = print_string "|"|};
  check ~path:"bin/fixture.ml" "R5 is lib-only" []
    {|let f () = print_endline "hi"|}

let test_r6_missing_mli () =
  let rules fs = List.map (fun (f : Finding.t) -> f.Finding.rule) fs in
  Alcotest.(check (list string))
    "lib ml without mli" [ "R6" ]
    (rules (Rules.check_missing_mli [ "lib/core/x.ml"; "lib/core/y.mli" ]));
  Alcotest.(check (list string))
    "paired ml+mli fine" []
    (rules (Rules.check_missing_mli [ "lib/core/x.ml"; "lib/core/x.mli" ]));
  Alcotest.(check (list string))
    "bin/ needs no mli" []
    (rules (Rules.check_missing_mli [ "bin/main.ml" ]))

let test_r7_obj () =
  check "Obj.magic flagged" [ "R7" ] "let f x = Obj.magic x";
  check "Obj.repr flagged" [ "R7" ] "let f x = Obj.repr x"

let test_r8_catch_all () =
  check "with _ -> flagged" [ "R8" ]
    "let f g = try g () with _ -> ()";
  check "specific exception fine" []
    "let f g = try g () with Not_found -> ()";
  check "guarded _ fine" []
    "let f g = try g () with e when e = Exit -> ()"

(* --------------------------- suppression ---------------------------- *)

let test_suppression () =
  check "expression [@lint.allow] honored" []
    {|let f h k = (Hashtbl.find h k [@lint.allow "R2"])|};
  check "binding-level attribute honored" []
    {|let f h k = Hashtbl.find h k [@@lint.allow "R2"]|};
  check "floating attribute is file-wide" []
    {|[@@@lint.allow "R2"]
let f h k = Hashtbl.find h k
let g xs = List.hd xs|};
  check "bare [@lint.allow] allows every rule" []
    {|let f x = (Obj.magic x [@lint.allow])|};
  check "wrong rule id does not suppress" [ "R2" ]
    {|let f h k = (Hashtbl.find h k [@lint.allow "R7"])|};
  check "tuple payload allows several rules" []
    {|let f h k = (Hashtbl.find h (Obj.magic k) [@lint.allow ("R2", "R7")])|};
  check "suppression is scoped, not global" [ "R2" ]
    {|let f h k = (Hashtbl.find h k [@lint.allow "R2"])
let g h k = Hashtbl.find h k|}

(* ------------------------------ parsing ----------------------------- *)

let test_parse_errors () =
  check "syntax error is a P0 finding" [ "P0" ] "let f x = ";
  check "lexer error is a P0 finding" [ "P0" ] "let s = \"unterminated"

(* ------------------------------ baseline ---------------------------- *)

let find file rule line =
  Finding.make ~file ~rule ~line ~col:0 ~message:"m" ~hint:""

let test_baseline_roundtrip () =
  let fs =
    [ find "lib/a.ml" "R2" 3; find "lib/a.ml" "R2" 9; find "test/t.ml" "R3" 1 ]
  in
  let b = Baseline.of_findings fs in
  let b' =
    match
      Baseline.of_json (Json.of_string (Json.to_string (Baseline.to_json b)))
    with
    | Ok b' -> b'
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check int) "entry count survives" 2 (List.length b');
  let fresh, stale = Baseline.apply b' fs in
  Alcotest.(check int) "snapshot is clean against itself" 0 (List.length fresh);
  Alcotest.(check int) "no stale budget" 0 (List.length stale)

let test_baseline_fresh_and_stale () =
  let b = Baseline.of_findings [ find "lib/a.ml" "R2" 3 ] in
  (* Same (file, rule) budget tolerates line drift... *)
  let fresh, _ = Baseline.apply b [ find "lib/a.ml" "R2" 7 ] in
  Alcotest.(check int) "line drift does not break the budget" 0
    (List.length fresh);
  (* ...but an extra finding of that (file, rule) is fresh... *)
  let fresh, _ =
    Baseline.apply b [ find "lib/a.ml" "R2" 3; find "lib/a.ml" "R2" 8 ]
  in
  Alcotest.(check int) "budget overflow is fresh" 1 (List.length fresh);
  (* ...and a paid-down file surfaces as stale (ratchet candidate). *)
  let fresh, stale = Baseline.apply b [] in
  Alcotest.(check int) "nothing fresh when paid down" 0 (List.length fresh);
  Alcotest.(check int) "paid-down entry is stale" 1 (List.length stale)

let test_baseline_rejects_malformed () =
  (match Baseline.of_json (Json.Obj [ ("version", Json.int 1) ]) with
  | Ok _ -> Alcotest.fail "accepted a baseline without entries"
  | Error _ -> ());
  match
    Baseline.of_json
      (Json.Obj
         [ ("entries", Json.List [ Json.Obj [ ("file", Json.Str "x") ] ]) ])
  with
  | Ok _ -> Alcotest.fail "accepted a malformed entry"
  | Error _ -> ()

(* ----------------------------- clean tree ---------------------------- *)

(* The repo's own sources (staged into _build by the dune deps of this
   test) must be clean against the checked-in baseline — the same gate CI
   runs via `dune build @lint`. *)
let test_clean_tree () =
  let cwd = Sys.getcwd () in
  Fun.protect
    ~finally:(fun () -> Sys.chdir cwd)
    (fun () ->
      Sys.chdir "..";
      Alcotest.(check bool)
        "repo sources staged" true
        (Sys.file_exists "lib/relational/value.ml");
      let baseline =
        match Baseline.load "lint.baseline" with
        | Ok b -> b
        | Error e -> Alcotest.fail e
      in
      let outcome =
        Driver.run ~baseline [ "lib"; "bin"; "bench"; "test" ]
      in
      Alcotest.(check int) "no parse errors" 0 outcome.Driver.parse_errors;
      List.iter
        (fun f -> Alcotest.failf "new finding: %a" Finding.pp f)
        outcome.Driver.fresh;
      Alcotest.(check bool) "clean against baseline" true
        (Driver.clean outcome))

(* The acceptance scenario: reintroducing a NULL-equality bug anywhere in
   lib/ must surface as a fresh finding against the checked-in baseline. *)
let test_null_eq_regression_is_fresh () =
  let baseline =
    (* Budgets only exist for test/ R3 debt, so any R1 is fresh. *)
    match Baseline.load "../lint.baseline" with
    | Ok b -> b
    | Error e -> Alcotest.fail e
  in
  let findings =
    Driver.lint_source ~path:"lib/relational/broken.ml"
      "let never_matches (a : Value.t) = a = Value.Null"
  in
  let fresh, _ = Baseline.apply baseline findings in
  Alcotest.(check (list string))
    "Null comparison escapes the baseline" [ "R1" ]
    (List.map (fun (f : Finding.t) -> f.Finding.rule) fresh)

(* ---------------------- R9..R12 (interprocedural) -------------------- *)

(* Findings from [sources] (path * content pairs linted as one program)
   with only [rules] selected, as "rule@line" strings in report order. *)
let program_rules_of rules sources =
  let opts = { Driver.default_options with Driver.rules = Some rules } in
  List.map
    (fun (f : Finding.t) -> Printf.sprintf "%s@%d" f.Finding.rule f.Finding.line)
    (Driver.lint_sources ~opts sources)

let check_program ?(path = "lib/fixture/fixture.ml") name rules expected src =
  Alcotest.(check (list string))
    name expected
    (program_rules_of rules [ (path, src) ])

let guarded_record =
  "type t = { m : Mutex.t; mutable n : int [@lint.guarded_by \"m\"] }\n"

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i =
    i + nl <= hl && (String.equal (String.sub hay i nl) needle || go (i + 1))
  in
  go 0

let test_r9_guarded_access () =
  check_program "unguarded write flagged" [ "R9" ] [ "R9@2" ]
    (guarded_record ^ "let reset t = t.n <- 0");
  check_program "reads are accesses too" [ "R9" ] [ "R9@2"; "R9@2" ]
    (guarded_record ^ "let bump t = t.n <- t.n + 1");
  check_program "access under Mutex.protect fine" [ "R9" ] []
    (guarded_record
   ^ "let bump t = Mutex.protect t.m (fun () -> t.n <- t.n + 1)");
  (* The finding names both the field and the declared lock. *)
  let opts =
    { Driver.default_options with Driver.rules = Some [ "R9" ] }
  in
  match
    Driver.lint_source ~opts ~path:"lib/fixture/fixture.ml"
      (guarded_record ^ "let reset t = t.n <- 0")
  with
  | [ f ] ->
      let has s =
        Alcotest.(check bool)
          (Printf.sprintf "message mentions %s" s)
          true
          (contains ~needle:s f.Finding.message)
      in
      has "\"n\"";
      has "\"m\""
  | fs -> Alcotest.failf "expected one R9 finding, got %d" (List.length fs)

let test_r9_reentrancy () =
  check_program "nested Mutex.protect on the same lock" [ "R9" ] [ "R9@3" ]
    (guarded_record
   ^ "let bad t =\n\
     \  Mutex.protect t.m (fun () -> Mutex.protect t.m (fun () -> t.n <- 1))");
  check_program "interprocedural re-acquisition at the call site" [ "R9" ]
    [ "R9@3" ]
    (guarded_record
   ^ "let lock_it t = Mutex.protect t.m (fun () -> t.n <- 1)\n\
      let bad t = Mutex.protect t.m (fun () -> lock_it t)");
  check_program "distinct locks nest fine" [ "R9" ] []
    ("type t = { m : Mutex.t; m2 : Mutex.t }\n"
   ^ "let ok t = Mutex.protect t.m (fun () -> Mutex.protect t.m2 (fun () -> ()))")

let test_r9_exit_holding () =
  (* A bare Mutex.lock with no unlock on some path trips the exit check;
     the access itself is guarded, so (a) stays quiet. *)
  check_program "lock held at exit" [ "R9" ] [ "R9@2" ]
    (guarded_record ^ "let bad t = Mutex.lock t.m; t.n <- 1")

let test_r9_completeness () =
  check_program "mutable sibling of a mutex must declare its guard" [ "R9" ]
    [ "R9@1" ] "type t = { m : Mutex.t; mutable n : int }\nlet mk m = { m; n = 0 }";
  check_program "field-level allow waives completeness" [ "R9" ] []
    "type t = { m : Mutex.t; mutable n : int [@lint.allow \"R9\"] }\n\
     let mk m = { m; n = 0 }";
  check_program "immutable siblings need no guard" [ "R9" ] []
    "type t = { m : Mutex.t; label : string }\nlet mk m = { m; label = \"x\" }"

let test_r9_always_held () =
  (* A private helper (absent from the mli) only ever called under the
     lock inherits it via the always-held meet: no annotation needed. *)
  let ml =
    guarded_record
    ^ "let helper t = t.n <- 1\n\
       let bump t = Mutex.protect t.m (fun () -> helper t)"
  in
  Alcotest.(check (list string))
    "private helper inherits the callers' lock" []
    (program_rules_of [ "R9" ]
       [
         ("lib/fixture/fixture.ml", ml);
         ("lib/fixture/fixture.mli", "type t\nval bump : t -> unit");
       ]);
  (* Public helpers can be entered from anywhere: the same body flags. *)
  Alcotest.(check (list string))
    "public helper must hold the lock itself" [ "R9@2" ]
    (program_rules_of [ "R9" ] [ ("lib/fixture/fixture.ml", ml) ])

let test_r10_blocking_under_lock () =
  check_program "direct blocking call under Mutex.protect" [ "R10" ] [ "R10@2" ]
    (guarded_record ^ "let bad t = Mutex.protect t.m (fun () -> Unix.sleep 1)");
  check_program "blocking reached through a callee" [ "R10" ] [ "R10@3" ]
    (guarded_record
   ^ "let nap () = Unix.sleep 1\n\
      let bad t = Mutex.protect t.m (fun () -> nap ())");
  check_program "spawned closures block on their own thread" [ "R10" ] []
    (guarded_record
   ^ "let ok t =\n\
     \  Mutex.protect t.m (fun () ->\n\
     \      ignore (Thread.create (fun () -> Unix.sleep 1) ()))");
  check_program "Condition.wait on the held mutex is the idiom" [ "R10" ] []
    (guarded_record
   ^ "let wait t c = Mutex.protect t.m (fun () -> Condition.wait c t.m)");
  check_program "Condition.wait on a foreign mutex still flags" [ "R10" ]
    [ "R10@3" ]
    (guarded_record ^ "type u = { m2 : Mutex.t }\n"
   ^ "let bad t u c = Mutex.protect t.m (fun () -> Condition.wait c u.m2)")

let test_r11_sans_io () =
  check_program ~path:"lib/core/fixture.ml" "core reaching the clock" [ "R11" ]
    [ "R11@1" ] "let now () = Unix.gettimeofday ()";
  check_program ~path:"lib/core/fixture.ml" "core spawning a domain" [ "R11" ]
    [ "R11@1" ] "let go f = Domain.spawn f";
  check_program ~path:"lib/server/fixture.ml" "server tier may do IO" [ "R11" ]
    [] "let now () = Unix.gettimeofday ()";
  check_program ~path:"lib/core/fixture.ml" "waiver with a comment" [ "R11" ] []
    "let now () = Unix.gettimeofday () [@@lint.allow \"R11\"]"

let test_r12_decoder_totality () =
  let proto = "lib/server/protocol.ml" in
  check_program ~path:proto "failwith on the decode surface" [ "R12" ]
    [ "R12@1" ]
    "let decode_widget s = if String.equal s \"\" then failwith \"empty\" else s";
  check_program ~path:proto "partial stdlib call on the decode surface"
    [ "R12" ] [ "R12@1" ] "let decode_widget h k = Hashtbl.find h k";
  check_program ~path:proto "handled exception is fine" [ "R12" ] []
    "let decode_widget s = try int_of_string s with Failure _ -> 0";
  check_program ~path:proto "raising helpers propagate to the entry" [ "R12" ]
    [ "R12@2" ]
    "let helper s = failwith s\nlet decode_widget s = helper s";
  check_program ~path:proto "non-entry functions may raise" [ "R12" ] []
    "let encode_widget s = failwith s";
  check_program ~path:"lib/server/listener.ml" "Framing is decode surface"
    [ "R12" ] [ "R12@2" ]
    "module Framing = struct\n  let split s = List.hd s\nend"

let test_rule_selection () =
  let opts_of rules = { Driver.default_options with Driver.rules = Some rules } in
  let rules_only rules src =
    List.map
      (fun (f : Finding.t) -> f.Finding.rule)
      (Driver.lint_source ~opts:(opts_of rules) ~path:"lib/fixture/fixture.ml"
         src)
  in
  Alcotest.(check (list string))
    "--rules filters per-file findings" [ "R2" ]
    (rules_only [ "R2" ]
       "let f h k = Hashtbl.find h k\n\
        let g xs = List.iter (fun x -> ignore (List.length xs + x)) xs");
  Alcotest.(check (list string))
    "parse errors always surface" [ "P0" ]
    (rules_only [ "R9" ] "let f x = ")

(* ------------------------- munge regressions ------------------------- *)

let read_staged path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let replace_once ~needle ~by s =
  let nl = String.length needle in
  let rec find i =
    if i + nl > String.length s then
      Alcotest.failf "munge anchor %S not found" needle
    else if String.equal (String.sub s i nl) needle then i
    else find (i + 1)
  in
  let i = find 0 in
  String.sub s 0 i ^ by ^ String.sub s (i + nl) (String.length s - i - nl)

let in_repo_root f =
  let cwd = Sys.getcwd () in
  Fun.protect
    ~finally:(fun () -> Sys.chdir cwd)
    (fun () ->
      Sys.chdir "..";
      f ())

(* Deleting the Mutex.protect wrapper from the Catalog name-table
   accessor must surface as R9 findings naming the field and its lock. *)
let test_r9_catalog_munge () =
  in_repo_root (fun () ->
      let munged =
        replace_once
          ~needle:"let with_names t f = Mutex.protect t.names_mutex f"
          ~by:"let with_names t f = f ()"
          (read_staged "lib/server/catalog.ml")
      in
      let opts =
        { Driver.default_options with Driver.rules = Some [ "R9" ] }
      in
      let findings =
        Driver.lint_sources ~opts [ ("lib/server/catalog.ml", munged) ]
        |> List.filter (fun (f : Finding.t) -> String.equal f.Finding.rule "R9")
      in
      Alcotest.(check bool)
        "dropping the lock wrapper is caught" true
        (List.length findings > 0);
      (* The wrapper guards both name-table fields; each finding must
         name one of them plus the lock. *)
      List.iter
        (fun (f : Finding.t) ->
          Alcotest.(check bool)
            "finding names the unguarded field and its lock" true
            ((contains ~needle:"\"relations\"" f.Finding.message
             || contains ~needle:"\"fps\"" f.Finding.message)
            && contains ~needle:"\"names_mutex\"" f.Finding.message))
        findings)

(* Reintroducing a raising path under Protocol.decode must surface as a
   fresh R12 with a witness chain through the helper. *)
let test_r12_protocol_munge () =
  in_repo_root (fun () ->
      let munged =
        replace_once ~needle:"let label_of_string = function"
          ~by:"let label_of_string = function\n  | \"!\" -> failwith \"boom\""
          (read_staged "lib/server/protocol.ml")
      in
      let opts =
        { Driver.default_options with Driver.rules = Some [ "R12" ] }
      in
      let findings =
        Driver.lint_sources ~opts [ ("lib/server/protocol.ml", munged) ]
        |> List.filter (fun (f : Finding.t) -> String.equal f.Finding.rule "R12")
      in
      Alcotest.(check bool)
        "failwith in a decode helper is caught" true
        (List.length findings > 0);
      Alcotest.(check bool)
        "witness chain passes through label_of_string" true
        (List.exists
           (fun (f : Finding.t) ->
             contains ~needle:"label_of_string" f.Finding.message)
           findings))

(* The analyzer's own sources hold themselves to the same bar. *)
let test_lint_self_clean () =
  in_repo_root (fun () ->
      let _, findings, analysis = Driver.lint_paths [ "lib/lint" ] in
      List.iter
        (fun f -> Alcotest.failf "lib/lint finding: %a" Finding.pp f)
        findings;
      match analysis with
      | Some a -> Alcotest.(check bool) "program pass ran" true (a.Driver.units > 0)
      | None -> Alcotest.fail "interprocedural stage did not run")

(* Changed mode restricts reports (and stale budgets) to the given set;
   the parallel driver reports the same findings in the same order. *)
let test_driver_modes () =
  in_repo_root (fun () ->
      let changed =
        {
          Driver.default_options with
          Driver.changed = Some [ "lib/lint/driver.ml" ];
        }
      in
      let outcome = Driver.run ~opts:changed [ "lib/lint" ] in
      Alcotest.(check int) "one file in the changed set" 1 outcome.Driver.files;
      Alcotest.(check (list string))
        "changed mode reports nothing stale" []
        (List.map (fun (e : Baseline.entry) -> e.Baseline.file) outcome.Driver.stale);
      List.iter
        (fun (f : Finding.t) ->
          Alcotest.(check string)
            "findings restricted to the changed file" "lib/lint/driver.ml"
            f.Finding.file)
        outcome.Driver.findings;
      let seq = Driver.lint_paths [ "lib/lint" ] in
      let par =
        Driver.lint_paths
          ~opts:{ Driver.default_options with Driver.jobs = 4 }
          [ "lib/lint" ]
      in
      let show (_, findings, _) =
        List.map
          (fun (f : Finding.t) ->
            Printf.sprintf "%s:%d:%s" f.Finding.file f.Finding.line f.Finding.rule)
          findings
      in
      Alcotest.(check (list string))
        "parallel run is deterministic" (show seq) (show par))

let suite =
  [
    Alcotest.test_case "r1-poly-eq" `Quick test_r1_poly_eq;
    Alcotest.test_case "r1-exemptions" `Quick test_r1_exemptions;
    Alcotest.test_case "r2-partial-calls" `Quick test_r2_partial_calls;
    Alcotest.test_case "r3-loops" `Quick test_r3_loops;
    Alcotest.test_case "r4-nondeterminism" `Quick test_r4_nondeterminism;
    Alcotest.test_case "r5-printing" `Quick test_r5_printing;
    Alcotest.test_case "r6-missing-mli" `Quick test_r6_missing_mli;
    Alcotest.test_case "r7-obj" `Quick test_r7_obj;
    Alcotest.test_case "r8-catch-all" `Quick test_r8_catch_all;
    Alcotest.test_case "suppression" `Quick test_suppression;
    Alcotest.test_case "parse-errors" `Quick test_parse_errors;
    Alcotest.test_case "baseline-roundtrip" `Quick test_baseline_roundtrip;
    Alcotest.test_case "baseline-fresh-stale" `Quick test_baseline_fresh_and_stale;
    Alcotest.test_case "baseline-malformed" `Quick test_baseline_rejects_malformed;
    Alcotest.test_case "r9-guarded-access" `Quick test_r9_guarded_access;
    Alcotest.test_case "r9-reentrancy" `Quick test_r9_reentrancy;
    Alcotest.test_case "r9-exit-holding" `Quick test_r9_exit_holding;
    Alcotest.test_case "r9-completeness" `Quick test_r9_completeness;
    Alcotest.test_case "r9-always-held" `Quick test_r9_always_held;
    Alcotest.test_case "r10-blocking-under-lock" `Quick test_r10_blocking_under_lock;
    Alcotest.test_case "r11-sans-io" `Quick test_r11_sans_io;
    Alcotest.test_case "r12-decoder-totality" `Quick test_r12_decoder_totality;
    Alcotest.test_case "rule-selection" `Quick test_rule_selection;
    Alcotest.test_case "r9-catalog-munge" `Quick test_r9_catalog_munge;
    Alcotest.test_case "r12-protocol-munge" `Quick test_r12_protocol_munge;
    Alcotest.test_case "lint-self-clean" `Quick test_lint_self_clean;
    Alcotest.test_case "driver-modes" `Quick test_driver_modes;
    Alcotest.test_case "clean-tree" `Quick test_clean_tree;
    Alcotest.test_case "null-eq-regression" `Quick test_null_eq_regression_is_fresh;
  ]
