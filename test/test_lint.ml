(* jqlint: one fixture per rule, the shallow-literal and Null exemptions,
   suppression scopes, baseline JSON round-trips, parse-error findings,
   and the clean-tree gate (the repo itself lints clean against
   lint.baseline). *)

module Driver = Jqi_lint.Driver
module Rules = Jqi_lint.Rules
module Finding = Jqi_lint.Finding
module Baseline = Jqi_lint.Baseline
module Json = Jqi_util.Json

(* Rule ids raised by [src] when linted as [path], in source order. *)
let rules_of ?(path = "lib/fixture/fixture.ml") src =
  List.map (fun (f : Finding.t) -> f.Finding.rule) (Driver.lint_source ~path src)

let check ?path name expected src =
  Alcotest.(check (list string)) name expected (rules_of ?path src)

(* --------------------------- rule fixtures -------------------------- *)

(* A module "handles Value" as soon as any identifier path mentions Value
   or Tuple; every R1 fixture does so via a type annotation. *)

let test_r1_poly_eq () =
  check "deep = flagged" [ "R1" ] "let f (a : Value.t) b = a = b";
  check "<> flagged" [ "R1" ] "let f (a : Value.t) b = a <> b";
  check "Null = Null flagged" [ "R1" ]
    "let _ = ignore (Jqi_relational.Value.Null = Jqi_relational.Value.Null)";
  check "= Value.Null flagged" [ "R1" ]
    "let f (a : Value.t) = a = Value.Null";
  check "compare flagged" [ "R1" ]
    "let f (a : Value.t) b = compare a b";
  check "Hashtbl.hash flagged" [ "R1" ]
    "let f (a : Value.t) = Hashtbl.hash a"

let test_r1_exemptions () =
  check "shallow int literal exempt" []
    "let f (a : Value.t) x = ignore a; x = 0";
  check "shallow [] exempt" []
    "let f (a : Value.t) xs = ignore a; xs = []";
  check "shallow None exempt" []
    "let f (a : Value.t) o = ignore a; o = None";
  check "module without Value mention unflagged" [] "let f a b = a = b";
  check ~path:"test/fixture.ml" "R1 skips test/" []
    "let f (a : Value.t) b = a = b"

let test_r2_partial_calls () =
  check "Hashtbl.find flagged" [ "R2" ] "let f h k = Hashtbl.find h k";
  check "List.hd flagged" [ "R2" ] "let f xs = List.hd xs";
  check "Option.get flagged" [ "R2" ] "let f o = Option.get o";
  check "functor map find flagged" [ "R2" ]
    "let f m k = Key_map.find k m";
  check "find_opt fine" [] "let f h k = Hashtbl.find_opt h k";
  check ~path:"bench/fixture.ml" "R2 is lib-only" []
    "let f xs = List.hd xs"

let test_r3_loops () =
  check "List.length in iter body" [ "R3" ]
    "let f xs = List.iter (fun x -> ignore (List.length xs + x)) xs";
  check "@ in fold body" [ "R3" ]
    "let f xs = List.fold_left (fun acc x -> acc @ [ x ]) [] xs";
  check "List.length in while body" [ "R3" ]
    "let f r xs = while !r do r := List.length xs > 0 done";
  check "List.length in for body" [ "R3" ]
    "let f xs = for _ = 1 to 3 do ignore (List.length xs) done";
  check "List.length outside loops fine" []
    "let f xs = List.length xs";
  check "hoisted binding fine" []
    "let f xs = let n = List.length xs in List.iter (fun x -> ignore (n + x)) xs"

let test_r4_nondeterminism () =
  check "Unix.gettimeofday flagged" [ "R4" ]
    "let t () = Unix.gettimeofday ()";
  check "Random flagged" [ "R4" ] "let r () = Random.int 10";
  check "Sys.time flagged" [ "R4" ] "let t () = Sys.time ()";
  check ~path:"lib/util/timer.ml" "timer.ml is the sanctioned clock" []
    "let now () = Unix.gettimeofday ()";
  check ~path:"lib/obs/obs.ml" "lib/obs may read the clock" []
    "let now () = Unix.gettimeofday ()"

let test_r5_printing () =
  check "Printf.printf flagged" [ "R5" ]
    {|let f () = Printf.printf "hi"|};
  check "print_endline flagged" [ "R5" ]
    {|let f () = print_endline "hi"|};
  check ~path:"lib/util/ascii_table.ml" "renderer may print" []
    {|let f () = print_string "|"|};
  check ~path:"bin/fixture.ml" "R5 is lib-only" []
    {|let f () = print_endline "hi"|}

let test_r6_missing_mli () =
  let rules fs = List.map (fun (f : Finding.t) -> f.Finding.rule) fs in
  Alcotest.(check (list string))
    "lib ml without mli" [ "R6" ]
    (rules (Rules.check_missing_mli [ "lib/core/x.ml"; "lib/core/y.mli" ]));
  Alcotest.(check (list string))
    "paired ml+mli fine" []
    (rules (Rules.check_missing_mli [ "lib/core/x.ml"; "lib/core/x.mli" ]));
  Alcotest.(check (list string))
    "bin/ needs no mli" []
    (rules (Rules.check_missing_mli [ "bin/main.ml" ]))

let test_r7_obj () =
  check "Obj.magic flagged" [ "R7" ] "let f x = Obj.magic x";
  check "Obj.repr flagged" [ "R7" ] "let f x = Obj.repr x"

let test_r8_catch_all () =
  check "with _ -> flagged" [ "R8" ]
    "let f g = try g () with _ -> ()";
  check "specific exception fine" []
    "let f g = try g () with Not_found -> ()";
  check "guarded _ fine" []
    "let f g = try g () with e when e = Exit -> ()"

(* --------------------------- suppression ---------------------------- *)

let test_suppression () =
  check "expression [@lint.allow] honored" []
    {|let f h k = (Hashtbl.find h k [@lint.allow "R2"])|};
  check "binding-level attribute honored" []
    {|let f h k = Hashtbl.find h k [@@lint.allow "R2"]|};
  check "floating attribute is file-wide" []
    {|[@@@lint.allow "R2"]
let f h k = Hashtbl.find h k
let g xs = List.hd xs|};
  check "bare [@lint.allow] allows every rule" []
    {|let f x = (Obj.magic x [@lint.allow])|};
  check "wrong rule id does not suppress" [ "R2" ]
    {|let f h k = (Hashtbl.find h k [@lint.allow "R7"])|};
  check "tuple payload allows several rules" []
    {|let f h k = (Hashtbl.find h (Obj.magic k) [@lint.allow ("R2", "R7")])|};
  check "suppression is scoped, not global" [ "R2" ]
    {|let f h k = (Hashtbl.find h k [@lint.allow "R2"])
let g h k = Hashtbl.find h k|}

(* ------------------------------ parsing ----------------------------- *)

let test_parse_errors () =
  check "syntax error is a P0 finding" [ "P0" ] "let f x = ";
  check "lexer error is a P0 finding" [ "P0" ] "let s = \"unterminated"

(* ------------------------------ baseline ---------------------------- *)

let find file rule line =
  Finding.make ~file ~rule ~line ~col:0 ~message:"m" ~hint:""

let test_baseline_roundtrip () =
  let fs =
    [ find "lib/a.ml" "R2" 3; find "lib/a.ml" "R2" 9; find "test/t.ml" "R3" 1 ]
  in
  let b = Baseline.of_findings fs in
  let b' =
    match
      Baseline.of_json (Json.of_string (Json.to_string (Baseline.to_json b)))
    with
    | Ok b' -> b'
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check int) "entry count survives" 2 (List.length b');
  let fresh, stale = Baseline.apply b' fs in
  Alcotest.(check int) "snapshot is clean against itself" 0 (List.length fresh);
  Alcotest.(check int) "no stale budget" 0 (List.length stale)

let test_baseline_fresh_and_stale () =
  let b = Baseline.of_findings [ find "lib/a.ml" "R2" 3 ] in
  (* Same (file, rule) budget tolerates line drift... *)
  let fresh, _ = Baseline.apply b [ find "lib/a.ml" "R2" 7 ] in
  Alcotest.(check int) "line drift does not break the budget" 0
    (List.length fresh);
  (* ...but an extra finding of that (file, rule) is fresh... *)
  let fresh, _ =
    Baseline.apply b [ find "lib/a.ml" "R2" 3; find "lib/a.ml" "R2" 8 ]
  in
  Alcotest.(check int) "budget overflow is fresh" 1 (List.length fresh);
  (* ...and a paid-down file surfaces as stale (ratchet candidate). *)
  let fresh, stale = Baseline.apply b [] in
  Alcotest.(check int) "nothing fresh when paid down" 0 (List.length fresh);
  Alcotest.(check int) "paid-down entry is stale" 1 (List.length stale)

let test_baseline_rejects_malformed () =
  (match Baseline.of_json (Json.Obj [ ("version", Json.int 1) ]) with
  | Ok _ -> Alcotest.fail "accepted a baseline without entries"
  | Error _ -> ());
  match
    Baseline.of_json
      (Json.Obj
         [ ("entries", Json.List [ Json.Obj [ ("file", Json.Str "x") ] ]) ])
  with
  | Ok _ -> Alcotest.fail "accepted a malformed entry"
  | Error _ -> ()

(* ----------------------------- clean tree ---------------------------- *)

(* The repo's own sources (staged into _build by the dune deps of this
   test) must be clean against the checked-in baseline — the same gate CI
   runs via `dune build @lint`. *)
let test_clean_tree () =
  let cwd = Sys.getcwd () in
  Fun.protect
    ~finally:(fun () -> Sys.chdir cwd)
    (fun () ->
      Sys.chdir "..";
      Alcotest.(check bool)
        "repo sources staged" true
        (Sys.file_exists "lib/relational/value.ml");
      let baseline =
        match Baseline.load "lint.baseline" with
        | Ok b -> b
        | Error e -> Alcotest.fail e
      in
      let outcome =
        Driver.run ~baseline [ "lib"; "bin"; "bench"; "test" ]
      in
      Alcotest.(check int) "no parse errors" 0 outcome.Driver.parse_errors;
      List.iter
        (fun f -> Alcotest.failf "new finding: %a" Finding.pp f)
        outcome.Driver.fresh;
      Alcotest.(check bool) "clean against baseline" true
        (Driver.clean outcome))

(* The acceptance scenario: reintroducing a NULL-equality bug anywhere in
   lib/ must surface as a fresh finding against the checked-in baseline. *)
let test_null_eq_regression_is_fresh () =
  let baseline =
    (* Budgets only exist for test/ R3 debt, so any R1 is fresh. *)
    match Baseline.load "../lint.baseline" with
    | Ok b -> b
    | Error e -> Alcotest.fail e
  in
  let findings =
    Driver.lint_source ~path:"lib/relational/broken.ml"
      "let never_matches (a : Value.t) = a = Value.Null"
  in
  let fresh, _ = Baseline.apply baseline findings in
  Alcotest.(check (list string))
    "Null comparison escapes the baseline" [ "R1" ]
    (List.map (fun (f : Finding.t) -> f.Finding.rule) fresh)

let suite =
  [
    Alcotest.test_case "r1-poly-eq" `Quick test_r1_poly_eq;
    Alcotest.test_case "r1-exemptions" `Quick test_r1_exemptions;
    Alcotest.test_case "r2-partial-calls" `Quick test_r2_partial_calls;
    Alcotest.test_case "r3-loops" `Quick test_r3_loops;
    Alcotest.test_case "r4-nondeterminism" `Quick test_r4_nondeterminism;
    Alcotest.test_case "r5-printing" `Quick test_r5_printing;
    Alcotest.test_case "r6-missing-mli" `Quick test_r6_missing_mli;
    Alcotest.test_case "r7-obj" `Quick test_r7_obj;
    Alcotest.test_case "r8-catch-all" `Quick test_r8_catch_all;
    Alcotest.test_case "suppression" `Quick test_suppression;
    Alcotest.test_case "parse-errors" `Quick test_parse_errors;
    Alcotest.test_case "baseline-roundtrip" `Quick test_baseline_roundtrip;
    Alcotest.test_case "baseline-fresh-stale" `Quick test_baseline_fresh_and_stale;
    Alcotest.test_case "baseline-malformed" `Quick test_baseline_rejects_malformed;
    Alcotest.test_case "clean-tree" `Quick test_clean_tree;
    Alcotest.test_case "null-eq-regression" `Quick test_null_eq_regression_is_fresh;
  ]
