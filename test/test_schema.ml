(* Schemas and tuples. *)

module Value = Jqi_relational.Value
module Schema = Jqi_relational.Schema
module Tuple = Jqi_relational.Tuple

let test_schema_lookup () =
  let s = Schema.of_names [ "a"; "b"; "c" ] in
  Alcotest.(check int) "arity" 3 (Schema.arity s);
  Alcotest.(check (option int)) "index of b" (Some 1) (Schema.index_of s "b");
  Alcotest.(check (option int)) "missing" None (Schema.index_of s "z");
  Alcotest.(check string) "name_at" "c" (Schema.name_at s 2);
  Alcotest.(check bool) "mem" true (Schema.mem s "a")

let test_duplicate_rejected () =
  Alcotest.check_raises "duplicate" (Invalid_argument "Schema: duplicate column \"a\"")
    (fun () -> ignore (Schema.of_names [ "a"; "a" ]))

let test_product_qualifies_clashes () =
  let a = Schema.of_names [ "id"; "x" ] in
  let b = Schema.of_names [ "id"; "y" ] in
  let p = Schema.product ~left_prefix:"L" ~right_prefix:"R" a b in
  Alcotest.(check (list string)) "qualified" [ "L.id"; "x"; "R.id"; "y" ]
    (Schema.names p)

let test_product_disjoint_untouched () =
  let a = Schema.of_names [ "x" ] and b = Schema.of_names [ "y" ] in
  Alcotest.(check (list string)) "kept" [ "x"; "y" ]
    (Schema.names (Schema.product a b))

let test_rename_project () =
  let s = Schema.of_names [ "a"; "b"; "c" ] in
  Alcotest.(check (list string)) "rename" [ "a"; "z"; "c" ]
    (Schema.names (Schema.rename s "b" "z"));
  Alcotest.(check (list string)) "project" [ "c"; "a" ]
    (Schema.names (Schema.project s [ 2; 0 ]));
  Alcotest.check_raises "rename missing" (Invalid_argument "Schema: no column \"q\"")
    (fun () -> ignore (Schema.rename s "q" "r"))

let test_schema_equal () =
  let a = Schema.of_names ~ty:Value.TInt [ "x" ] in
  let b = Schema.of_names ~ty:Value.TInt [ "x" ] in
  let c = Schema.of_names ~ty:Value.TString [ "x" ] in
  Alcotest.(check bool) "equal" true (Schema.equal a b);
  Alcotest.(check bool) "type matters" false (Schema.equal a c)

let test_tuple_ops () =
  let t = Tuple.ints [ 1; 2; 3 ] in
  Alcotest.(check int) "arity" 3 (Tuple.arity t);
  Alcotest.check Fixtures.value_testable "get" (Value.Int 2) (Tuple.get t 1);
  Alcotest.check Fixtures.tuple_testable "project"
    (Tuple.ints [ 3; 1 ])
    (Tuple.project t [ 2; 0 ]);
  Alcotest.check Fixtures.tuple_testable "concat"
    (Tuple.ints [ 1; 2; 3; 4 ])
    (Tuple.concat t (Tuple.ints [ 4 ]))

let test_tuple_equal_compare () =
  let a = Tuple.of_list [ Value.Null; Value.Int 1 ] in
  let b = Tuple.of_list [ Value.Null; Value.Int 1 ] in
  (* Tuple equality is structural (uses the total order), so NULLs are equal
     as *cells* even though they never *join*. *)
  Alcotest.(check bool) "structural equality" true (Tuple.equal a b);
  Alcotest.(check int) "compare 0" 0 (Tuple.compare a b);
  Alcotest.(check int) "hash equal" (Tuple.hash a) (Tuple.hash b);
  let c = Tuple.of_list [ Value.Null; Value.Int 2 ] in
  Alcotest.(check bool) "differs" false (Tuple.equal a c);
  (* Arity participates in the order. *)
  Alcotest.(check bool) "shorter sorts first" true
    (Tuple.compare (Tuple.ints [ 9 ]) (Tuple.ints [ 0; 0 ]) < 0)

let suite =
  [
    Alcotest.test_case "lookup" `Quick test_schema_lookup;
    Alcotest.test_case "duplicates rejected" `Quick test_duplicate_rejected;
    Alcotest.test_case "product qualifies clashes" `Quick test_product_qualifies_clashes;
    Alcotest.test_case "product keeps disjoint names" `Quick test_product_disjoint_untouched;
    Alcotest.test_case "rename/project" `Quick test_rename_project;
    Alcotest.test_case "schema equality" `Quick test_schema_equal;
    Alcotest.test_case "tuple ops" `Quick test_tuple_ops;
    Alcotest.test_case "tuple equal/compare/hash" `Quick test_tuple_equal_compare;
  ]
