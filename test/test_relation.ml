(* Relations and the algebra operators. *)

module Value = Jqi_relational.Value
module Schema = Jqi_relational.Schema
module Tuple = Jqi_relational.Tuple
module Relation = Jqi_relational.Relation
module Algebra = Jqi_relational.Algebra

let rel name cols rows =
  Relation.of_list ~name ~schema:(Schema.of_names ~ty:Value.TInt cols)
    (List.map Tuple.ints rows)

let r = rel "r" [ "a"; "b" ] [ [ 1; 2 ]; [ 3; 4 ]; [ 1; 2 ]; [ 5; 6 ] ]

let rows_as_lists relation =
  List.map
    (fun t -> List.map (function Value.Int i -> i | _ -> min_int) (Tuple.to_list t))
    (Relation.to_list relation)

let test_create_checks_arity () =
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Relation bad: row arity 1, schema arity 2") (fun () ->
      ignore (rel "bad" [ "a"; "b" ] [ [ 1 ] ]))

let test_select () =
  let sel = Algebra.select r (fun t -> Tuple.get t 0 = Value.Int 1) in
  Alcotest.(check int) "selected" 2 (Relation.cardinality sel);
  Alcotest.(check (list (list int))) "rows" [ [ 1; 2 ]; [ 1; 2 ] ] (rows_as_lists sel)

let test_project () =
  let p = Algebra.project r [ "b" ] in
  Alcotest.(check (list string)) "schema" [ "b" ] (Schema.names (Relation.schema p));
  Alcotest.(check (list (list int))) "rows (duplicates kept)"
    [ [ 2 ]; [ 4 ]; [ 2 ]; [ 6 ] ] (rows_as_lists p)

let test_distinct () =
  let d = Algebra.distinct r in
  Alcotest.(check (list (list int))) "dedup keeps first occurrence order"
    [ [ 1; 2 ]; [ 3; 4 ]; [ 5; 6 ] ] (rows_as_lists d)

let test_union_inter_diff () =
  let s = rel "s" [ "a"; "b" ] [ [ 1; 2 ]; [ 7; 8 ] ] in
  Alcotest.(check (list (list int))) "union"
    [ [ 1; 2 ]; [ 3; 4 ]; [ 5; 6 ]; [ 7; 8 ] ]
    (rows_as_lists (Algebra.union r s));
  Alcotest.(check (list (list int))) "inter" [ [ 1; 2 ] ]
    (rows_as_lists (Algebra.inter r s));
  Alcotest.(check (list (list int))) "diff" [ [ 3; 4 ]; [ 5; 6 ] ]
    (rows_as_lists (Algebra.difference r s));
  let bad = rel "t" [ "x" ] [ [ 1 ] ] in
  Alcotest.check_raises "incompatible"
    (Invalid_argument "Algebra: union-incompatible schemas") (fun () ->
      ignore (Algebra.union r bad))

let test_product () =
  let s = rel "s" [ "c" ] [ [ 10 ]; [ 20 ] ] in
  let p = Algebra.product (Algebra.distinct r) s in
  Alcotest.(check int) "cardinality" 6 (Relation.cardinality p);
  Alcotest.(check (list string)) "schema" [ "a"; "b"; "c" ]
    (Schema.names (Relation.schema p));
  Alcotest.(check (list (list int))) "row order (left-major)"
    [ [ 1; 2; 10 ]; [ 1; 2; 20 ]; [ 3; 4; 10 ]; [ 3; 4; 20 ]; [ 5; 6; 10 ]; [ 5; 6; 20 ] ]
    (rows_as_lists p)

let test_product_qualifies () =
  let s = rel "s" [ "a" ] [ [ 1 ] ] in
  let p = Algebra.product r s in
  Alcotest.(check (list string)) "qualified" [ "r.a"; "b"; "s.a" ]
    (Schema.names (Relation.schema p))

let test_sort_limit () =
  let sorted = Algebra.sort_by r [ "b" ] in
  Alcotest.(check (list (list int))) "sorted"
    [ [ 1; 2 ]; [ 1; 2 ]; [ 3; 4 ]; [ 5; 6 ] ] (rows_as_lists sorted);
  Alcotest.(check (list (list int))) "limit" [ [ 1; 2 ]; [ 3; 4 ] ]
    (rows_as_lists (Algebra.limit r 2));
  Alcotest.(check int) "limit beyond size" 4
    (Relation.cardinality (Algebra.limit r 100))

let test_rename () =
  let rn = Algebra.rename r "a" "z" in
  Alcotest.(check (list string)) "renamed" [ "z"; "b" ]
    (Schema.names (Relation.schema rn));
  Alcotest.(check int) "rows preserved" 4 (Relation.cardinality rn)

let test_equal_contents () =
  let a = rel "a" [ "x" ] [ [ 1 ]; [ 2 ] ] in
  let b = rel "b" [ "x" ] [ [ 2 ]; [ 1 ]; [ 1 ] ] in
  Alcotest.(check bool) "set equality ignores order and dups" true
    (Relation.equal_contents a b)

let test_mem_fold () =
  Alcotest.(check bool) "mem" true (Relation.mem r (Tuple.ints [ 3; 4 ]));
  Alcotest.(check bool) "not mem" false (Relation.mem r (Tuple.ints [ 9; 9 ]));
  let sum =
    Relation.fold
      (fun acc t -> match Tuple.get t 0 with Value.Int i -> acc + i | _ -> acc)
      0 r
  in
  Alcotest.(check int) "fold" 10 sum

let suite =
  [
    Alcotest.test_case "create checks arity" `Quick test_create_checks_arity;
    Alcotest.test_case "select" `Quick test_select;
    Alcotest.test_case "project" `Quick test_project;
    Alcotest.test_case "distinct" `Quick test_distinct;
    Alcotest.test_case "union/inter/diff" `Quick test_union_inter_diff;
    Alcotest.test_case "product" `Quick test_product;
    Alcotest.test_case "product qualifies names" `Quick test_product_qualifies;
    Alcotest.test_case "sort/limit" `Quick test_sort_limit;
    Alcotest.test_case "rename" `Quick test_rename;
    Alcotest.test_case "equal_contents" `Quick test_equal_contents;
    Alcotest.test_case "mem/fold" `Quick test_mem_fold;
  ]
