(* Values: SQL-style equality, total order, parsing and type inference. *)

module Value = Jqi_relational.Value

let v = Fixtures.value_testable

let test_eq_null_semantics () =
  Alcotest.(check bool) "null <> null" false (Value.eq Value.Null Value.Null);
  Alcotest.(check bool) "null <> int" false (Value.eq Value.Null (Value.Int 0));
  Alcotest.(check bool) "int = int" true (Value.eq (Value.Int 3) (Value.Int 3));
  Alcotest.(check bool) "int <> other int" false (Value.eq (Value.Int 3) (Value.Int 4));
  Alcotest.(check bool) "str equality" true (Value.eq (Value.Str "a") (Value.Str "a"))

let test_eq_cross_type () =
  Alcotest.(check bool) "int <> float" false (Value.eq (Value.Int 1) (Value.Float 1.));
  Alcotest.(check bool) "int <> str" false (Value.eq (Value.Int 1) (Value.Str "1"));
  Alcotest.(check bool) "bool <> int" false (Value.eq (Value.Bool true) (Value.Int 1))

let test_compare_total_order () =
  (* Null sorts first; the order is total even across types. *)
  let vals =
    [ Value.Str "b"; Value.Int 2; Value.Null; Value.Float 1.5; Value.Bool false; Value.Int 1 ]
  in
  let sorted = List.sort Value.compare vals in
  Alcotest.check v "null first" Value.Null (List.hd sorted);
  (* compare agrees with itself reversed. *)
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          Alcotest.(check int) "antisymmetric" (Value.compare a b)
            (-Value.compare b a))
        vals)
    vals

let test_hash_consistent_with_compare () =
  let pairs = [ (Value.Int 5, Value.Int 5); (Value.Str "x", Value.Str "x") ] in
  List.iter
    (fun (a, b) ->
      Alcotest.(check int) "equal values equal hashes" (Value.hash a) (Value.hash b))
    pairs

let test_parse () =
  Alcotest.(check (option v)) "int" (Some (Value.Int 42)) (Value.parse Value.TInt "42");
  Alcotest.(check (option v)) "negative int" (Some (Value.Int (-7)))
    (Value.parse Value.TInt "-7");
  Alcotest.(check (option v)) "bad int" None (Value.parse Value.TInt "4x");
  Alcotest.(check (option v)) "float" (Some (Value.Float 1.5))
    (Value.parse Value.TFloat "1.5");
  Alcotest.(check (option v)) "bool yes" (Some (Value.Bool true))
    (Value.parse Value.TBool "yes");
  Alcotest.(check (option v)) "bool F" (Some (Value.Bool false))
    (Value.parse Value.TBool "F");
  Alcotest.(check (option v)) "string" (Some (Value.Str "hi"))
    (Value.parse Value.TString "hi");
  Alcotest.(check (option v)) "empty is null" (Some Value.Null)
    (Value.parse Value.TInt "")

let test_infer_ty () =
  Alcotest.(check bool) "ints" true (Value.infer_ty [ "1"; "2"; "" ] = Value.TInt);
  Alcotest.(check bool) "floats" true (Value.infer_ty [ "1"; "2.5" ] = Value.TFloat);
  Alcotest.(check bool) "strings" true (Value.infer_ty [ "1"; "abc" ] = Value.TString);
  Alcotest.(check bool) "bools" true (Value.infer_ty [ "true"; "no" ] = Value.TBool);
  (* Numeric-looking booleans prefer int (narrowest first). *)
  Alcotest.(check bool) "0/1 prefers int" true (Value.infer_ty [ "0"; "1" ] = Value.TInt)

let test_to_string_roundtrip () =
  List.iter
    (fun (ty, value) ->
      Alcotest.(check (option v))
        "roundtrip" (Some value)
        (Value.parse ty (Value.to_string value)))
    [
      (Value.TInt, Value.Int 19);
      (Value.TFloat, Value.Float 2.25);
      (Value.TString, Value.Str "plain");
      (Value.TBool, Value.Bool true);
    ]

let suite =
  [
    Alcotest.test_case "null equality semantics" `Quick test_eq_null_semantics;
    Alcotest.test_case "cross-type equality" `Quick test_eq_cross_type;
    Alcotest.test_case "compare total order" `Quick test_compare_total_order;
    Alcotest.test_case "hash consistency" `Quick test_hash_consistent_with_compare;
    Alcotest.test_case "parse" `Quick test_parse;
    Alcotest.test_case "infer_ty" `Quick test_infer_ty;
    Alcotest.test_case "to_string roundtrip" `Quick test_to_string_roundtrip;
  ]
