(* Property-based fuzzing of the two textual formats: random CSV records
   must survive write→parse exactly, and random SQL ASTs must reach a
   print→parse fixpoint. *)

module Csv = Jqi_relational.Csv
module Ast = Jqi_sql.Ast
module Parser = Jqi_sql.Parser

(* -------------------------------- CSV ------------------------------ *)

(* Cells exercise every quoting path: separators, quotes, newlines, CRs,
   unicode bytes.  Records must be non-empty (a record of zero fields is
   not representable in CSV). *)
let gen_cell =
  QCheck.Gen.(
    frequency
      [
        (4, string_size ~gen:printable (int_bound 10));
        (1, return "");
        (1, return "a,b");
        (1, return "say \"hi\"");
        (1, return "two\nlines");
        (1, return "trailing\r");
        (1, return "'quoted'");
        (1, map (String.make 1) (oneofl [ ','; '"'; '\n'; ';' ]));
      ])

let gen_records =
  QCheck.Gen.(list_size (int_range 1 8) (list_size (int_range 1 5) gen_cell))

(* parse_string cannot represent a record whose rendering is empty-line
   ambiguous: a single-field record containing only "" renders as an empty
   line.  Filter those. *)
let representable records =
  List.for_all (fun r -> r <> [ "" ]) records

let csv_roundtrip =
  QCheck.Test.make ~name:"csv write/parse roundtrip" ~count:500
    (QCheck.make gen_records ~print:(fun rs ->
         String.concat "|" (List.map (String.concat ",") rs)))
    (fun records ->
      QCheck.assume (representable records);
      Csv.parse_string (Csv.to_string records) = records)

let csv_separator_roundtrip =
  QCheck.Test.make ~name:"csv roundtrip with ';' separator" ~count:200
    (QCheck.make gen_records)
    (fun records ->
      QCheck.assume (representable records);
      Csv.parse_string ~sep:';' (Csv.to_string ~sep:';' records) = records)

(* -------------------------------- SQL ------------------------------ *)

let gen_name =
  QCheck.Gen.(
    oneof
      [
        oneofl [ "users"; "orders"; "t"; "a_b"; "x1" ];
        (* Names needing quoting: keywords and odd characters. *)
        oneofl [ "select"; "from"; "weird name"; "1starts_digit" ];
      ])

let rec gen_expr_sized depth =
  QCheck.Gen.(
    if depth = 0 then
      frequency
        [
          (4, map (fun c -> Ast.Col (None, c)) gen_name);
          (2, map2 (fun q c -> Ast.Col (Some q, c)) gen_name gen_name);
          (2, map (fun i -> Ast.Int i) (int_bound 1000));
          (1, return (Ast.Float 2.5));
          (2, map (fun s -> Ast.Str s) (oneofl [ "x"; "it's"; "" ]));
          (1, return (Ast.Bool true));
          (1, return Ast.Null);
        ]
    else
      frequency
        [
          (4, gen_expr_sized 0);
          ( 1,
            let* op = oneofl [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Div ] in
            let* a = gen_expr_sized (depth - 1) in
            let* b = gen_expr_sized (depth - 1) in
            return (Ast.Binop (op, a, b)) );
        ])

let gen_expr = gen_expr_sized 2

let gen_cmp = QCheck.Gen.oneofl [ Ast.Eq; Ast.Ne; Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge ]

let rec gen_cond depth =
  QCheck.Gen.(
    if depth = 0 then
      oneof
        [
          map3 (fun op a b -> Ast.Cmp (op, a, b)) gen_cmp gen_expr gen_expr;
          map (fun e -> Ast.Is_null e) gen_expr;
          map (fun e -> Ast.Is_not_null e) gen_expr;
        ]
    else
      frequency
        [
          (3, gen_cond 0);
          (1, map2 (fun a b -> Ast.And (a, b)) (gen_cond (depth - 1)) (gen_cond (depth - 1)));
          (1, map2 (fun a b -> Ast.Or (a, b)) (gen_cond (depth - 1)) (gen_cond (depth - 1)));
          (1, map (fun c -> Ast.Not c) (gen_cond (depth - 1)));
        ])

let gen_source =
  QCheck.Gen.(
    map2
      (fun table alias -> { Ast.table; alias })
      gen_name
      (opt gen_name))

let gen_join =
  QCheck.Gen.(
    let* kind = oneofl [ Ast.Inner; Ast.Semi; Ast.Anti; Ast.Cross ] in
    let* src = gen_source in
    let* cond = gen_cond 1 in
    return
      (match kind with
      | Ast.Cross -> (kind, src, None)
      | _ -> (kind, src, Some cond)))

let gen_query =
  QCheck.Gen.(
    let* distinct = bool in
    let* select =
      oneof
        [
          return [ Ast.Star ];
          list_size (int_range 1 3)
            (map2 (fun e a -> Ast.Expr (e, a)) gen_expr (opt gen_name));
        ]
    in
    let* from = gen_source in
    let* joins = list_size (int_bound 2) gen_join in
    let* where = opt (gen_cond 2) in
    let* group_by = list_size (int_bound 2) gen_expr in
    (* Aggregate select items only when grouping makes them executable;
       the printer/parser roundtrip does not care about executability, so
       mix them in freely. *)
    let* select =
      if group_by = [] then return select
      else
        let* aggs =
          list_size (int_bound 2)
            (let* fn = oneofl [ Ast.Count; Ast.Sum; Ast.Avg; Ast.Min; Ast.Max ] in
             let* arg = if fn = Ast.Count then opt gen_expr else map Option.some gen_expr in
             let* alias = opt gen_name in
             return (Ast.Agg (fn, arg, alias)))
        in
        return
          (match select with
          | [ Ast.Star ] when aggs <> [] -> aggs
          | items -> items @ aggs)
    in
    let* having = if group_by = [] then return None else opt (gen_cond 1) in
    let* order_by =
      list_size (int_bound 2)
        (map2 (fun e d -> (e, d)) gen_expr (oneofl [ Ast.Asc; Ast.Desc ]))
    in
    let* limit = opt (int_bound 100) in
    return
      { Ast.distinct; select; from; joins; where; group_by; having; order_by; limit })

let sql_print_parse_fixpoint =
  QCheck.Test.make ~name:"sql print/parse fixpoint" ~count:500
    (QCheck.make gen_query ~print:Ast.to_string)
    (fun q ->
      let printed = Ast.to_string q in
      match Parser.parse_result printed with
      | Result.Error e -> QCheck.Test.fail_reportf "unparseable: %s (%s)" printed e
      | Ok q' ->
          let printed' = Ast.to_string q' in
          if printed = printed' then true
          else
            QCheck.Test.fail_reportf "not a fixpoint:\n  %s\n  %s" printed printed')

(* The lexer never loops or crashes on arbitrary printable input; it either
   tokenizes or raises its typed error. *)
let lexer_total =
  QCheck.Test.make ~name:"lexer total on printable strings" ~count:500
    QCheck.(string_gen_of_size (QCheck.Gen.int_bound 60) QCheck.Gen.printable)
    (fun s ->
      match Jqi_sql.Lexer.tokenize s with
      | _ -> true
      | exception Jqi_sql.Lexer.Error _ -> true)

(* --------------------------- wire framing -------------------------- *)

module Framing = Jqi_server.Listener.Framing
module Protocol = Jqi_server.Protocol

let event_to_string = function
  | Framing.Frame s -> Printf.sprintf "Frame %S" s
  | Framing.Overflow n -> Printf.sprintf "Overflow %d" n
  | Framing.Await -> "Await"

(* Feed the chunks, then pop every completed event. *)
let events_of ?max_frame chunks =
  let t = Framing.create ?max_frame () in
  List.iter (Framing.feed t) chunks;
  let rec drain acc =
    match Framing.next t with
    | Framing.Await -> List.rev acc
    | e -> drain (e :: acc)
  in
  drain []

let check_events what expected got =
  Alcotest.(check (list string))
    what
    (List.map event_to_string expected)
    (List.map event_to_string got)

(* The regression table: torn frames, CRLF, oversized lines, partial
   writes — every case an error frame or clean buffering, never a
   surprise. *)
let test_framing_table () =
  check_events "torn frames reassemble across writes"
    [ Framing.Frame "abc"; Framing.Frame "def" ]
    (events_of [ "ab"; "c\nde"; "f\n" ]);
  check_events "no newline, no frame" [] (events_of [ "half a line" ]);
  check_events "crlf terminator stripped" [ Framing.Frame "abc" ]
    (events_of [ "abc\r\n" ]);
  check_events "bare cr mid-line preserved" [ Framing.Frame "a\rb" ]
    (events_of [ "a\rb\n" ]);
  check_events "empty line is an empty frame" [ Framing.Frame "" ]
    (events_of [ "\n" ]);
  check_events "oversized line: overflow, rest discarded, next line intact"
    [ Framing.Overflow 5; Framing.Frame "ok" ]
    (events_of ~max_frame:4 [ "abcdefgh\nok\n" ]);
  check_events "oversized line torn across writes"
    [ Framing.Overflow 5; Framing.Frame "z" ]
    (events_of ~max_frame:4 [ "abc"; "def"; "g\nz\n" ]);
  check_events "two oversized lines, two overflows"
    [ Framing.Overflow 5; Framing.Overflow 5 ]
    (events_of ~max_frame:4 [ "aaaaaaaa\nbbbbbbbb\n" ])

let graph_char_or_nl =
  QCheck.Gen.(
    frequency [ (8, printable); (1, return '\n'); (1, return '\r') ])

(* Random byte streams: a mix of valid frames, truncations and noise. *)
let gen_wire_stream =
  QCheck.Gen.(
    map (String.concat "")
      (list_size (int_bound 6)
         (oneof
            [
              oneofl
                [
                  {|{"v":1,"id":3,"op":"stats"}|} ^ "\n";
                  {|{"v":1,"id":4,"op":"ask","session":"s1"}|} ^ "\n";
                  {|{"v":1,"id":7,"op":"hello","versions":[1]}|} ^ "\n";
                  {|{"v":1,"id":9|};
                  "garbage";
                  "\n";
                  "\r\n";
                ];
              string_size ~gen:graph_char_or_nl (int_bound 80);
            ])))

(* Split [s] at the (deduplicated, in-range) cut points. *)
let split_at_cuts s cuts =
  let cuts =
    List.sort_uniq Int.compare
      (List.filter (fun c -> c > 0 && c < String.length s) cuts)
  in
  let rec go start = function
    | [] -> [ String.sub s start (String.length s - start) ]
    | c :: rest -> String.sub s start (c - start) :: go c rest
  in
  go 0 cuts

let gen_stream_and_cuts =
  QCheck.Gen.(pair gen_wire_stream (list_size (int_bound 8) (int_bound 300)))

let print_stream_and_cuts (s, cuts) =
  Printf.sprintf "%S cut at [%s]" s
    (String.concat ";" (List.map string_of_int cuts))

(* Chunk invariance: the event sequence is a function of the byte
   stream, not of how the writes were torn. *)
let framing_chunk_invariant =
  QCheck.Test.make ~name:"framing invariant under write boundaries" ~count:300
    (QCheck.make gen_stream_and_cuts ~print:print_stream_and_cuts)
    (fun (s, cuts) ->
      events_of ~max_frame:64 (split_at_cuts s cuts)
      = events_of ~max_frame:64 [ s ])

(* Decoder totality extended to the framed TCP path: every frame the
   framing layer can ever emit decodes to a request or an error frame —
   never an exception. *)
let framed_decoder_total =
  QCheck.Test.make ~name:"protocol decoder total over framed streams"
    ~count:300
    (QCheck.make gen_stream_and_cuts ~print:print_stream_and_cuts)
    (fun (s, cuts) ->
      List.for_all
        (fun event ->
          match event with
          | Framing.Frame line -> (
              match Protocol.decode_request line with
              | Ok _ | Error _ -> true)
          | Framing.Overflow _ | Framing.Await -> true)
        (events_of ~max_frame:64 (split_at_cuts s cuts)))

let suite =
  Alcotest.test_case "wire framing regression table" `Quick test_framing_table
  :: List.map QCheck_alcotest.to_alcotest
       [
         csv_roundtrip;
         csv_separator_roundtrip;
         sql_print_parse_fixpoint;
         lexer_total;
         framing_chunk_invariant;
         framed_decoder_total;
       ]
