(* The service layer: catalog universe cache (content-addressed, build
   shared across sessions), session manager lifecycle + idle eviction,
   the wire codec (QCheck roundtrips; garbage must come back as error
   frames, never exceptions) and the frame dispatcher. *)

open Fixtures
module Bits = Jqi_util.Bits
module Json = Jqi_util.Json
module Obs = Jqi_obs.Obs
module Csv = Jqi_relational.Csv
module Engine = Jqi_core.Engine
module Sample = Jqi_core.Sample
module Catalog = Jqi_server.Catalog
module Manager = Jqi_server.Manager
module P = Jqi_server.Protocol
module Service = Jqi_server.Service
module Delta = Jqi_relational.Delta

let fh_omega =
  Jqi_core.Omega.of_schemas
    (Relation.schema Fixtures.flight)
    (Relation.schema Fixtures.hotel)

(* The Figure-1 goal: Flight.To = Hotel.City. *)
let fh_goal = Jqi_core.Omega.of_names fh_omega [ ("To", "City") ]

let label_for goal signature =
  if Bits.subset goal signature then Sample.Positive else Sample.Negative

let fh_catalog () =
  let catalog = Catalog.create () in
  Catalog.add catalog Fixtures.flight;
  Catalog.add catalog Fixtures.hotel;
  catalog

(* ----------------------------- catalog ----------------------------- *)

let test_catalog_cache () =
  Obs.reset ();
  Obs.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.reset ())
    (fun () ->
      let catalog = fh_catalog () in
      let hit1, u1 = Catalog.universe catalog Fixtures.flight Fixtures.hotel in
      let hit2, u2 = Catalog.universe catalog Fixtures.flight Fixtures.hotel in
      Alcotest.(check bool) "first build misses" false hit1;
      Alcotest.(check bool) "second hits" true hit2;
      Alcotest.(check bool) "same universe shared" true (u1 == u2);
      Alcotest.(check (pair int int)) "stats" (1, 1) (Catalog.stats catalog);
      (* The cache is keyed by content, not registration name. *)
      Catalog.add ~name:"flight2" catalog Fixtures.flight;
      let hit3, u3 = Catalog.universe catalog Fixtures.flight Fixtures.hotel in
      Alcotest.(check bool) "renamed content still hits" true hit3;
      Alcotest.(check bool) "still shared" true (u1 == u3);
      (* Swapping the pair is a different product: a fresh build. *)
      let hit4, _ = Catalog.universe catalog Fixtures.hotel Fixtures.flight in
      Alcotest.(check bool) "swapped pair misses" false hit4;
      let report = Obs.Report.snapshot () in
      Alcotest.(check int) "hit counter" 2
        (Obs.Report.counter report "server.universe_cache_hit");
      Alcotest.(check int) "miss counter = builds performed" 2
        (Obs.Report.counter report "server.universe_cache_miss"))

let test_catalog_names () =
  let catalog = fh_catalog () in
  Alcotest.(check (list string)) "sorted names" [ "Flight"; "Hotel" ]
    (Catalog.names catalog);
  Alcotest.(check bool) "find hit" true (Catalog.find catalog "Hotel" <> None);
  Alcotest.(check bool) "find miss" true (Catalog.find catalog "nope" = None)

let test_fingerprint () =
  let fp = Relation.fingerprint in
  let flight_copy =
    Relation.of_list ~name:(Relation.name Fixtures.flight)
      ~schema:(Relation.schema Fixtures.flight)
      (Array.to_list (Relation.rows Fixtures.flight))
  in
  Alcotest.(check string) "structural copy, same fingerprint"
    (fp Fixtures.flight) (fp flight_copy);
  Alcotest.(check bool) "different relations differ" true
    (not (String.equal (fp Fixtures.flight) (fp Fixtures.hotel)));
  let grown =
    Relation.with_rows Fixtures.flight
      (Array.append
         (Relation.rows Fixtures.flight)
         [| Tuple.strs [ "NYC"; "Lille"; "AF" ] |])
  in
  Alcotest.(check bool) "adding a row changes it" true
    (not (String.equal (fp Fixtures.flight) (fp grown)))

(* ----------------------------- manager ----------------------------- *)

let expect_ok what = function
  | Ok x -> x
  | Error e -> Alcotest.fail (what ^ ": " ^ Manager.error_message e)

let rec drive_manager manager id turn =
  match turn with
  | Manager.Finished outcome -> outcome
  | Manager.Next q ->
      drive_manager manager id
        (expect_ok "tell"
           (Manager.tell manager id (label_for fh_goal q.Engine.signature)))

let test_manager_lifecycle () =
  Obs.reset ();
  Obs.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.reset ())
    (fun () ->
      let manager = Manager.create (fh_catalog ()) in
      let info =
        expect_ok "open"
          (Manager.open_session manager ~r:"Flight" ~p:"Hotel" ~strategy:"td")
      in
      Alcotest.(check string) "first id" "s1" info.Manager.id;
      Alcotest.(check bool) "first open builds" false info.Manager.cache_hit;
      Alcotest.(check string) "strategy name" "TD" info.Manager.strategy_name;
      let outcome =
        drive_manager manager info.Manager.id
          (expect_ok "ask" (Manager.ask manager info.Manager.id))
      in
      Alcotest.check bits_testable "inferred the goal" fh_goal
        outcome.Engine.predicate;
      Alcotest.(check bool) "halted" true outcome.Engine.halted;
      (* A label without an outstanding question is an error, not a crash. *)
      (match Manager.tell manager info.Manager.id Sample.Positive with
      | Error (Manager.No_pending _) -> ()
      | Ok _ | Error _ -> Alcotest.fail "expected No_pending");
      (* Second session over the same pair shares the universe. *)
      let info2 =
        expect_ok "open2"
          (Manager.open_session manager ~r:"Flight" ~p:"Hotel" ~strategy:"bu")
      in
      Alcotest.(check bool) "second open hits the cache" true
        info2.Manager.cache_hit;
      let report = Obs.Report.snapshot () in
      Alcotest.(check int) "exactly one universe build" 1
        (Obs.Report.counter report "server.universe_cache_miss");
      Alcotest.(check int) "opens counted" 2
        (Obs.Report.counter report "server.sessions_opened");
      Alcotest.(check int) "close" 2 (Manager.session_count manager);
      (match Manager.close manager info.Manager.id with
      | Ok () -> ()
      | Error e -> Alcotest.fail (Manager.error_message e));
      (match Manager.close manager info.Manager.id with
      | Error (Manager.Unknown_session _) -> ()
      | Ok () | Error _ -> Alcotest.fail "double close must fail");
      Alcotest.(check (list string)) "remaining ids" [ info2.Manager.id ]
        (Manager.session_ids manager))

let test_manager_errors () =
  let manager = Manager.create (fh_catalog ()) in
  (match Manager.open_session manager ~r:"nope" ~p:"Hotel" ~strategy:"td" with
  | Error (Manager.Unknown_relation "nope") -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected Unknown_relation");
  (match Manager.open_session manager ~r:"Flight" ~p:"Hotel" ~strategy:"zz" with
  | Error (Manager.Unknown_strategy "zz") -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected Unknown_strategy");
  (match Manager.ask manager "s99" with
  | Error (Manager.Unknown_session "s99") -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected Unknown_session");
  match
    Manager.resume_session manager ~r:"Flight" ~p:"Hotel" (Json.Obj [])
  with
  | Error (Manager.Corrupt_session _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected Corrupt_session"

let test_manager_save_resume () =
  let manager = Manager.create (fh_catalog ()) in
  let info =
    expect_ok "open"
      (Manager.open_session manager ~r:"Flight" ~p:"Hotel" ~strategy:"td")
  in
  let id = info.Manager.id in
  (* Answer one question, note the next one, freeze. *)
  let q1 =
    match expect_ok "ask" (Manager.ask manager id) with
    | Manager.Next q -> q
    | Manager.Finished _ -> Alcotest.fail "finished too early"
  in
  let q2 =
    match
      expect_ok "tell" (Manager.tell manager id (label_for fh_goal q1.Engine.signature))
    with
    | Manager.Next q -> q
    | Manager.Finished _ -> Alcotest.fail "finished too early"
  in
  let doc = expect_ok "save" (Manager.save manager id) in
  expect_ok "close" (Manager.close manager id);
  (* Thaw: the in-flight question must be re-presented verbatim, and the
     resumed run must land on the same predicate. *)
  let info2 =
    expect_ok "resume" (Manager.resume_session manager ~r:"Flight" ~p:"Hotel" doc)
  in
  Alcotest.(check string) "persisted strategy restored" "TD"
    info2.Manager.strategy_name;
  Alcotest.(check bool) "resume hits the universe cache" true
    info2.Manager.cache_hit;
  (match expect_ok "ask2" (Manager.ask manager info2.Manager.id) with
  | Manager.Next q ->
      Alcotest.(check int) "frozen question re-presented" q2.Engine.class_id
        q.Engine.class_id
  | Manager.Finished _ -> Alcotest.fail "lost the in-flight question");
  let outcome =
    drive_manager manager info2.Manager.id
      (expect_ok "ask3" (Manager.ask manager info2.Manager.id))
  in
  Alcotest.check bits_testable "same answer after thaw" fh_goal
    outcome.Engine.predicate

let test_manager_idle_eviction () =
  let now = ref 0. in
  let manager =
    Manager.create ~clock:(fun () -> !now) ~idle_timeout:10. (fh_catalog ())
  in
  let s1 =
    (expect_ok "open1"
       (Manager.open_session manager ~r:"Flight" ~p:"Hotel" ~strategy:"td"))
      .Manager.id
  in
  let s2 =
    (expect_ok "open2"
       (Manager.open_session manager ~r:"Flight" ~p:"Hotel" ~strategy:"bu"))
      .Manager.id
  in
  Alcotest.(check (list string)) "nothing stale yet" [] (Manager.sweep manager);
  now := 5.;
  ignore (expect_ok "touch s1" (Manager.ask manager s1));
  now := 12.;
  Alcotest.(check (list string)) "s2 idle past the timeout" [ s2 ]
    (Manager.sweep manager);
  Alcotest.(check int) "one session left" 1 (Manager.session_count manager);
  (match Manager.ask manager s2 with
  | Error (Manager.Unknown_session _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "evicted session must be gone");
  Alcotest.(check bool) "survivor still answers" true
    (match Manager.ask manager s1 with Ok _ -> true | Error _ -> false)

(* Idle eviction of a session with an in-flight pending question must
   autosave — the same guarantee the CLI's EOF path gives.  Pinned with
   an injected clock: no real time passes. *)
let test_eviction_autosaves_pending () =
  let now = ref 0. in
  let manager =
    Manager.create ~clock:(fun () -> !now) ~idle_timeout:10. (fh_catalog ())
  in
  let id =
    (expect_ok "open"
       (Manager.open_session manager ~r:"Flight" ~p:"Hotel" ~strategy:"td"))
      .Manager.id
  in
  (* Answer one question and leave the next one outstanding. *)
  let q1 =
    match expect_ok "ask" (Manager.ask manager id) with
    | Manager.Next q -> q
    | Manager.Finished _ -> Alcotest.fail "finished too early"
  in
  let q2 =
    match
      expect_ok "tell" (Manager.tell manager id (label_for fh_goal q1.Engine.signature))
    with
    | Manager.Next q -> q
    | Manager.Finished _ -> Alcotest.fail "finished too early"
  in
  now := 20.;
  Alcotest.(check (list string)) "evicted" [ id ] (Manager.sweep manager);
  let stats = Manager.stats manager in
  Alcotest.(check int) "eviction counted" 1 stats.Manager.evicted;
  Alcotest.(check int) "eviction autosaved" 1 stats.Manager.autosaved;
  Alcotest.(check bool) "unknown id has no autosave" true
    (Manager.evicted_doc manager "no-such-session" = None);
  let doc =
    match Manager.evicted_doc manager id with
    | Some doc -> doc
    | None -> Alcotest.fail "evicted session left no resume document"
  in
  (* Thaw the autosave: the in-flight question survives eviction exactly
     as it survives an explicit save. *)
  let info =
    expect_ok "resume" (Manager.resume_session manager ~r:"Flight" ~p:"Hotel" doc)
  in
  (match expect_ok "ask2" (Manager.ask manager info.Manager.id) with
  | Manager.Next q ->
      Alcotest.(check int) "pending question survived eviction"
        q2.Engine.class_id q.Engine.class_id
  | Manager.Finished _ -> Alcotest.fail "lost the pending question");
  let outcome =
    drive_manager manager info.Manager.id
      (expect_ok "ask3" (Manager.ask manager info.Manager.id))
  in
  Alcotest.check bits_testable "same θ after evict and thaw" fh_goal
    outcome.Engine.predicate

(* ------------------------- churn broadcast ------------------------- *)

let has_substring ~needle hay =
  let nl = String.length needle in
  let hl = String.length hay in
  let rec go i = i + nl <= hl && (String.equal (String.sub hay i nl) needle || go (i + 1)) in
  go 0

(* A duplicate row changes no signature, so every open session must
   re-certify transparently: same id, labels kept, pending question
   re-anchored, and the cached universe patched rather than rebuilt. *)
let test_manager_delta_recertify () =
  let manager = Manager.create (fh_catalog ()) in
  let id =
    (expect_ok "open"
       (Manager.open_session manager ~r:"Flight" ~p:"Hotel" ~strategy:"td"))
      .Manager.id
  in
  let q1 =
    match expect_ok "ask" (Manager.ask manager id) with
    | Manager.Next q -> q
    | Manager.Finished _ -> Alcotest.fail "finished too early"
  in
  let q2 =
    match
      expect_ok "tell"
        (Manager.tell manager id (label_for fh_goal q1.Engine.signature))
    with
    | Manager.Next q -> q
    | Manager.Finished _ -> Alcotest.fail "finished too early"
  in
  let dup = (Relation.rows Fixtures.flight).(0) in
  let info =
    expect_ok "delta"
      (Manager.apply_delta manager ~relation:"Flight"
         (Delta.of_lists ~adds:[ dup ] ~removes:[]))
  in
  Alcotest.(check int) "one row added" 1 info.Manager.added;
  Alcotest.(check int) "no rows removed" 0 info.Manager.removed;
  Alcotest.(check (list string))
    "session carried over" [ id ] info.Manager.recertified;
  Alcotest.(check (list (pair string string)))
    "nobody stale" [] info.Manager.stale;
  Alcotest.(check int) "cached universe patched in place" 1
    info.Manager.cache_patched;
  Alcotest.(check int) "nothing evicted" 0 info.Manager.cache_dropped;
  (match expect_ok "ask after churn" (Manager.ask manager id) with
  | Manager.Next q ->
      Alcotest.check bits_testable "pending question survived churn"
        q2.Engine.signature q.Engine.signature
  | Manager.Finished _ -> Alcotest.fail "lost the pending question");
  let outcome =
    drive_manager manager id (expect_ok "ask" (Manager.ask manager id))
  in
  Alcotest.check bits_testable "goal reached across churn" fh_goal
    outcome.Engine.predicate

(* Tiny deterministic pair for retirement scenarios.  The product has
   three classes — {} (twice), {a1=b1} and the join {a1=b1, a2=b2} — and
   the join class is carried by exactly one pair, (TR row 0, TP row 0).
   Its signature is a strict subset of Ω, so it is never implied-certain
   (a full-signature class would be), and deleting TR row (1,10) retires
   it while the other classes survive. *)
let tiny_rel name attrs rows =
  Relation.of_list ~name
    ~schema:
      (Jqi_relational.Schema.of_names ~ty:Jqi_relational.Value.TInt attrs)
    (List.map Tuple.ints rows)

let tiny_r () = tiny_rel "TR" [ "a1"; "a2" ] [ [ 1; 10 ]; [ 2; 20 ] ]
let tiny_p () = tiny_rel "TP" [ "b1"; "b2" ] [ [ 1; 10 ]; [ 2; 21 ] ]

let tiny_catalog () =
  let catalog = Catalog.create () in
  Catalog.add catalog (tiny_r ());
  Catalog.add catalog (tiny_p ());
  catalog

let tiny_join_sig () =
  let omega =
    Jqi_core.Omega.of_schemas
      (Relation.schema (tiny_r ()))
      (Relation.schema (tiny_p ()))
  in
  Sample.signature_of_tuple omega (tiny_r ()) (tiny_p ()) (0, 0)

let sig_json s = Json.List (List.map Json.int (Bits.elements s))

(* Deleting the only joining pair retires a labeled class: the session
   comes back stale with a typed reason, refuses ask/tell, and still
   saves (the labels stay recoverable).  The history is pinned through a
   signature-anchored document, so the scenario is strategy-independent:
   the live session provably carries a label on the class about to
   retire. *)
let test_manager_delta_stale () =
  let manager = Manager.create (tiny_catalog ()) in
  let doc =
    Json.Obj
      [
        ("version", Json.int 2);
        ("strategy", Json.Str "TD");
        ( "examples",
          Json.List
            [
              Json.Obj
                [
                  ("r", Json.int 0);
                  ("p", Json.int 0);
                  ("sig", sig_json (tiny_join_sig ()));
                  ("label", Json.Str "+");
                ];
            ] );
      ]
  in
  let id =
    (expect_ok "resume" (Manager.resume_session manager ~r:"TR" ~p:"TP" doc))
      .Manager.id
  in
  let info =
    expect_ok "delta"
      (Manager.apply_delta manager ~relation:"TR"
         (Delta.of_lists ~adds:[] ~removes:[ Tuple.ints [ 1; 10 ] ]))
  in
  Alcotest.(check (list string)) "nobody recertified" []
    info.Manager.recertified;
  (match info.Manager.stale with
  | [ (sid, reason) ] ->
      Alcotest.(check string) "the session is flagged" id sid;
      Alcotest.(check bool) "reason names retirement" true
        (has_substring ~needle:"retired" reason)
  | [] | _ :: _ -> Alcotest.fail "expected exactly one stale session");
  (match Manager.ask manager id with
  | Error (Manager.Stale_label msg) ->
      Alcotest.(check bool) "ask refusal carries the reason" true
        (has_substring ~needle:"stale" msg)
  | Ok _ | Error _ -> Alcotest.fail "stale session must refuse ask");
  (match Manager.tell manager id Sample.Positive with
  | Error (Manager.Stale_label _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "stale session must refuse tell");
  match Manager.save manager id with
  | Ok _ -> ()
  | Error e ->
      Alcotest.fail ("stale session must still save: " ^ Manager.error_message e)

(* Satellite (d): a saved session whose pending question's tuples are
   deleted by a delta must resume as the typed stale_label error, not
   corrupt and not a silent drop — the persisted signature is
   authoritative.  The document freezes an in-flight question on the
   joining class; the same document resumes fine before the delta. *)
let test_resume_stale_pending () =
  let manager = Manager.create (tiny_catalog ()) in
  let doc =
    Json.Obj
      [
        ("version", Json.int 2);
        ("strategy", Json.Str "TD");
        ("examples", Json.List []);
        ( "pending",
          Json.Obj
            [
              ("r", Json.int 0);
              ("p", Json.int 0);
              ("sig", sig_json (tiny_join_sig ()));
            ] );
      ]
  in
  let pre =
    expect_ok "resume pre-delta"
      (Manager.resume_session manager ~r:"TR" ~p:"TP" doc)
  in
  (match expect_ok "ask pre-delta" (Manager.ask manager pre.Manager.id) with
  | Manager.Next (q : Engine.question) ->
      Alcotest.(check (list int)) "pending anchored on the joining class"
        (Bits.elements (tiny_join_sig ()))
        (Bits.elements q.Engine.signature)
  | Manager.Finished _ -> Alcotest.fail "frozen question lost pre-delta");
  expect_ok "close" (Manager.close manager pre.Manager.id);
  ignore
    (expect_ok "delta"
       (Manager.apply_delta manager ~relation:"TR"
          (Delta.of_lists ~adds:[] ~removes:[ Tuple.ints [ 1; 10 ] ])));
  match Manager.resume_session manager ~r:"TR" ~p:"TP" doc with
  | Error (Manager.Stale_label msg) ->
      Alcotest.(check bool) "names the pending question" true
        (has_substring ~needle:"pending" msg)
  | Ok _ -> Alcotest.fail "resume must surface the retired pending class"
  | Error e ->
      Alcotest.fail
        ("expected stale_label, got: " ^ Manager.error_message e)

(* Churn then idle eviction, with an injected clock: the re-certified
   session autosaves on sweep and thaws against the patched universe —
   no real time passes and no rebuild happens. *)
let test_eviction_after_churn () =
  let now = ref 0. in
  let manager =
    Manager.create ~clock:(fun () -> !now) ~idle_timeout:10. (fh_catalog ())
  in
  let id =
    (expect_ok "open"
       (Manager.open_session manager ~r:"Flight" ~p:"Hotel" ~strategy:"td"))
      .Manager.id
  in
  let q1 =
    match expect_ok "ask" (Manager.ask manager id) with
    | Manager.Next q -> q
    | Manager.Finished _ -> Alcotest.fail "finished too early"
  in
  let q2 =
    match
      expect_ok "tell"
        (Manager.tell manager id (label_for fh_goal q1.Engine.signature))
    with
    | Manager.Next q -> q
    | Manager.Finished _ -> Alcotest.fail "finished too early"
  in
  let dup = (Relation.rows Fixtures.flight).(1) in
  let info =
    expect_ok "delta"
      (Manager.apply_delta manager ~relation:"Flight"
         (Delta.of_lists ~adds:[ dup ] ~removes:[]))
  in
  Alcotest.(check (list string)) "carried over before eviction" [ id ]
    info.Manager.recertified;
  now := 20.;
  Alcotest.(check (list string)) "evicted on schedule" [ id ]
    (Manager.sweep manager);
  let doc =
    match Manager.evicted_doc manager id with
    | Some doc -> doc
    | None -> Alcotest.fail "churned session left no autosave"
  in
  let info2 =
    expect_ok "resume"
      (Manager.resume_session manager ~r:"Flight" ~p:"Hotel" doc)
  in
  Alcotest.(check bool) "thaw hits the patched universe cache" true
    info2.Manager.cache_hit;
  (match expect_ok "ask" (Manager.ask manager info2.Manager.id) with
  | Manager.Next q ->
      Alcotest.check bits_testable "pending survived churn + eviction"
        q2.Engine.signature q.Engine.signature
  | Manager.Finished _ -> Alcotest.fail "lost the pending question");
  let outcome =
    drive_manager manager info2.Manager.id
      (expect_ok "ask" (Manager.ask manager info2.Manager.id))
  in
  Alcotest.check bits_testable "same θ after churn, evict and thaw" fh_goal
    outcome.Engine.predicate

(* ----------------------------- protocol ---------------------------- *)

let gen_str = QCheck.Gen.(string_size ~gen:printable (int_range 0 10))

let gen_label = QCheck.Gen.map Sample.label_of_bool QCheck.Gen.bool

let gen_doc =
  QCheck.Gen.(
    oneof
      [
        return Json.Null;
        map Json.int (int_bound 100);
        map (fun s -> Json.Str s) gen_str;
        return (Json.Obj [ ("version", Json.int 2); ("examples", Json.List []) ]);
      ])

let gen_request =
  QCheck.Gen.(
    oneof
      [
        map (fun vs -> P.Hello { versions = vs })
          (list_size (int_range 0 4) (int_bound 6));
        map2 (fun name path -> P.Load { name; path }) (option gen_str) gen_str;
        map3
          (fun r p strategy -> P.Open_session { r; p; strategy })
          gen_str gen_str gen_str;
        map (fun session -> P.Ask { session }) gen_str;
        map2 (fun session label -> P.Tell { session; label }) gen_str gen_label;
        map (fun session -> P.Save { session }) gen_str;
        map3
          (fun (r, p) strategy doc -> P.Resume { r; p; strategy; doc })
          (pair gen_str gen_str) (option gen_str) gen_doc;
        map2
          (fun relations strategy -> P.Open_kary { relations; strategy })
          (list_size (int_range 0 4) gen_str)
          gen_str;
        map3
          (fun relations strategy doc ->
            P.Resume_kary { relations; strategy; doc })
          (list_size (int_range 0 4) gen_str)
          (option gen_str) gen_doc;
        map3
          (fun relation insert delete -> P.Delta { relation; insert; delete })
          gen_str
          (list_size (int_range 0 3) (list_size (int_range 0 3) gen_str))
          (list_size (int_range 0 3) (list_size (int_range 0 3) gen_str));
        map (fun session -> P.Close { session }) gen_str;
        return P.Stats;
      ])

let gen_response =
  QCheck.Gen.(
    oneof
      [
        map (fun v -> P.Welcome { version = v }) (int_bound 9);
        map2 (fun name rows -> P.Loaded { name; rows }) gen_str (int_bound 999);
        map3
          (fun session classes (omega_width, cache_hit) ->
            P.Opened { session; classes; omega_width; cache_hit })
          gen_str (int_bound 99)
          (pair (int_bound 99) bool);
        map3
          (fun (q_session, q_class) (q_r_row, q_p_row) (q_r_cells, q_p_cells) ->
            P.Question
              { q_session; q_class; q_r_row; q_p_row; q_r_cells; q_p_cells })
          (pair gen_str (int_bound 99))
          (pair (int_bound 99) (int_bound 99))
          (pair
             (list_size (int_range 0 3) gen_str)
             (list_size (int_range 0 3) gen_str));
        map3
          (fun session predicate n_interactions ->
            P.Done { session; predicate; n_interactions })
          gen_str
          (list_size (int_range 0 3) (pair gen_str gen_str))
          (int_bound 99);
        map3
          (fun (k_session, k_class) k_rows k_cells ->
            P.Kquestion { k_session; k_class; k_rows; k_cells })
          (pair gen_str (int_bound 99))
          (list_size (int_range 0 4) (int_bound 99))
          (list_size (int_range 0 4) (list_size (int_range 0 3) gen_str));
        map2 (fun session doc -> P.Saved { session; doc }) gen_str gen_doc;
        map3
          (fun (d_relation, (d_added, d_removed))
               (d_cache_patched, d_cache_dropped) (d_recertified, d_stale) ->
            P.Delta_applied
              {
                d_relation;
                d_added;
                d_removed;
                d_cache_patched;
                d_cache_dropped;
                d_recertified;
                d_stale;
              })
          (pair gen_str (pair (int_bound 99) (int_bound 99)))
          (pair (int_bound 99) (int_bound 99))
          (pair
             (list_size (int_range 0 3) gen_str)
             (list_size (int_range 0 3) (pair gen_str gen_str)));
        map (fun session -> P.Closed { session }) gen_str;
        map3
          (fun sessions relations (cache_hits, cache_misses) ->
            P.Stats_reply { sessions; relations; cache_hits; cache_misses })
          (int_bound 99)
          (list_size (int_range 0 3) gen_str)
          (pair (int_bound 99) (int_bound 99));
        map2 (fun code message -> P.Error { code; message }) gen_str gen_str;
      ])

let qcheck_request_roundtrip =
  QCheck.Test.make ~name:"decode ∘ encode = id for request frames" ~count:300
    (QCheck.make
       QCheck.Gen.(pair (int_bound 10_000) gen_request)
       ~print:(fun (id, r) -> P.encode_request ~id r))
    (fun (id, request) ->
      match P.decode_request (P.encode_request ~id request) with
      | Ok (id', request') -> id = id' && P.equal_request request request'
      | Error _ -> false)

let qcheck_response_roundtrip =
  QCheck.Test.make ~name:"decode ∘ encode = id for response frames" ~count:300
    (QCheck.make
       QCheck.Gen.(pair (int_bound 10_000) gen_response)
       ~print:(fun (id, r) -> P.encode_response ~id r))
    (fun (id, response) ->
      match P.decode_response (P.encode_response ~id response) with
      | Ok (id', response') -> id = id' && P.equal_response response response'
      | Error _ -> false)

let qcheck_decoder_total =
  QCheck.Test.make ~name:"request decoder never raises on garbage" ~count:500
    QCheck.(string_gen QCheck.Gen.printable)
    (fun line ->
      match P.decode_request line with
      | Ok _ | Error _ -> true)

let expect_error_frame what expected_code expected_id line =
  match P.decode_request line with
  | Error (id, P.Error { code; _ }) ->
      Alcotest.(check string) (what ^ ": code") expected_code code;
      Alcotest.(check int) (what ^ ": id echoed") expected_id id
  | Error (_, _) | Ok _ -> Alcotest.fail (what ^ ": expected an error frame")

let test_decode_garbage () =
  expect_error_frame "empty" "parse" 0 "";
  expect_error_frame "not json" "parse" 0 "nonsense";
  expect_error_frame "truncated" "parse" 0 "{\"v\":1,\"id\":3";
  expect_error_frame "non-object" "parse" 0 "[1,2,3]";
  expect_error_frame "wrong version" "version" 7 "{\"v\":2,\"id\":7,\"op\":\"stats\"}";
  expect_error_frame "missing version" "version" 7 "{\"id\":7,\"op\":\"stats\"}";
  expect_error_frame "missing op" "malformed" 7 "{\"v\":1,\"id\":7}";
  expect_error_frame "missing field" "malformed" 7
    "{\"v\":1,\"id\":7,\"op\":\"tell\",\"session\":\"s1\"}";
  expect_error_frame "bad label" "malformed" 7
    "{\"v\":1,\"id\":7,\"op\":\"tell\",\"session\":\"s1\",\"label\":\"maybe\"}";
  expect_error_frame "unknown op" "unsupported" 7 "{\"v\":1,\"id\":7,\"op\":\"zap\"}";
  expect_error_frame "delta missing relation" "malformed" 7
    "{\"v\":1,\"id\":7,\"op\":\"delta\",\"insert\":[]}";
  expect_error_frame "delta rows not lists" "malformed" 7
    "{\"v\":1,\"id\":7,\"op\":\"delta\",\"relation\":\"R\",\"insert\":3}";
  (* Omitted row lists are empty batch sides, not errors. *)
  match
    P.decode_request "{\"v\":1,\"id\":7,\"op\":\"delta\",\"relation\":\"R\"}"
  with
  | Ok (7, P.Delta { relation = "R"; insert = []; delete = [] }) -> ()
  | Ok _ | Error _ -> Alcotest.fail "bare delta frame must decode empty"

let test_negotiate () =
  Alcotest.(check (option int)) "current version" (Some 1) (P.negotiate [ 1 ]);
  Alcotest.(check (option int)) "picks the newest common" (Some 1)
    (P.negotiate [ 0; 1; 7 ]);
  Alcotest.(check (option int)) "nothing in common" None (P.negotiate [ 99 ]);
  Alcotest.(check (option int)) "empty offer" None (P.negotiate [])

(* ----------------------------- service ----------------------------- *)

let with_temp_csvs f =
  let r_path = Filename.temp_file "jqi_flight" ".csv" in
  let p_path = Filename.temp_file "jqi_hotel" ".csv" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove r_path;
      Sys.remove p_path)
    (fun () ->
      Csv.save_relation r_path Fixtures.flight;
      Csv.save_relation p_path Fixtures.hotel;
      f r_path p_path)

let test_service_full_flight () =
  with_temp_csvs (fun r_path p_path ->
      let manager = Manager.create (Catalog.create ()) in
      let handle = Service.handle manager in
      (match handle (P.Hello { versions = [ 1; 9 ] }) with
      | P.Welcome { version = 1 } -> ()
      | _ -> Alcotest.fail "hello");
      (match handle (P.Load { name = Some "flight"; path = r_path }) with
      | P.Loaded { name = "flight"; rows = 4 } -> ()
      | _ -> Alcotest.fail "load flight");
      (match handle (P.Load { name = Some "hotel"; path = p_path }) with
      | P.Loaded { name = "hotel"; rows = 3 } -> ()
      | _ -> Alcotest.fail "load hotel");
      let session =
        match
          handle (P.Open_session { r = "flight"; p = "hotel"; strategy = "td" })
        with
        | P.Opened { session; cache_hit = false; _ } -> session
        | _ -> Alcotest.fail "open"
      in
      let questions = ref 0 in
      let rec loop resp =
        match resp with
        | P.Question { q_r_row; q_p_row; q_r_cells; q_p_cells; _ } ->
            incr questions;
            Alcotest.(check int) "flight cells rendered" 3
              (List.length q_r_cells);
            Alcotest.(check int) "hotel cells rendered" 2
              (List.length q_p_cells);
            let s =
              Sample.signature_of_tuple fh_omega Fixtures.flight Fixtures.hotel
                (q_r_row, q_p_row)
            in
            loop (handle (P.Tell { session; label = label_for fh_goal s }))
        | P.Done { predicate; n_interactions; _ } ->
            Alcotest.(check (list (pair string string)))
              "predicate named" [ ("To", "City") ] predicate;
            Alcotest.(check int) "interaction count" !questions n_interactions
        | _ -> Alcotest.fail "unexpected turn"
      in
      loop (handle (P.Ask { session }));
      (* Re-opening the same CSVs must hit the universe cache. *)
      (match
         handle (P.Open_session { r = "flight"; p = "hotel"; strategy = "bu" })
       with
      | P.Opened { cache_hit = true; _ } -> ()
      | _ -> Alcotest.fail "second open should hit the cache");
      match handle P.Stats with
      | P.Stats_reply { sessions = 2; relations; cache_hits = 1; cache_misses = 1 }
        ->
          Alcotest.(check (list string)) "catalog names" [ "flight"; "hotel" ]
            relations
      | _ -> Alcotest.fail "stats")

(* Three-relation chain over the wire: open_kary answers with kquestion
   frames (one row + one cell list per relation), and the closing done
   frame qualifies attribute names as "rel.attr".  Binary frames are
   untouched by any of this — sessions over exactly two relations still
   answer with the classic question frame (test_service_full_flight). *)
let test_service_kary_flight () =
  let rel name attrs rows =
    Relation.of_list ~name
      ~schema:(Jqi_relational.Schema.of_names ~ty:Jqi_relational.Value.TInt attrs)
      (List.map Jqi_relational.Tuple.ints rows)
  in
  let a = rel "a" [ "ak" ] [ [ 1 ]; [ 2 ]; [ 3 ] ] in
  let b = rel "b" [ "bk"; "bv" ] [ [ 1; 10 ]; [ 2; 20 ]; [ 9; 10 ] ] in
  let c = rel "c" [ "ck" ] [ [ 10 ]; [ 20 ]; [ 30 ] ] in
  let catalog = Catalog.create () in
  List.iter (Catalog.add catalog) [ a; b; c ];
  let manager = Manager.create catalog in
  let handle = Service.handle manager in
  (* The labelling side runs the same byte-identical universe build the
     server does, so the kquestion's class index addresses it directly. *)
  let u = Jqi_core.Universe.build_kary [ a; b; c ] in
  let goal =
    Jqi_core.Omega.of_names_kary (Jqi_core.Universe.omega u)
      [ ("a.ak", "b.bk"); ("b.bv", "c.ck") ]
  in
  let session =
    match
      handle (P.Open_kary { relations = [ "a"; "b"; "c" ]; strategy = "td" })
    with
    | P.Opened { session; cache_hit = false; _ } -> session
    | _ -> Alcotest.fail "open_kary"
  in
  let questions = ref 0 in
  let rec loop resp =
    match resp with
    | P.Kquestion { k_session; k_class; k_rows; k_cells } ->
        incr questions;
        Alcotest.(check string) "session echoed" session k_session;
        Alcotest.(check int) "one row per relation" 3 (List.length k_rows);
        Alcotest.(check int) "one cell list per relation" 3
          (List.length k_cells);
        Alcotest.(check (list int)) "cell list arities" [ 1; 2; 1 ]
          (List.map List.length k_cells);
        let label = label_for goal (Jqi_core.Universe.signature u k_class) in
        loop (handle (P.Tell { session; label }))
    | P.Done { predicate; n_interactions; _ } ->
        Alcotest.(check (list (pair string string)))
          "predicate qualified as rel.attr"
          [ ("a.ak", "b.bk"); ("b.bv", "c.ck") ]
          predicate;
        Alcotest.(check int) "interaction count" !questions n_interactions
    | _ -> Alcotest.fail "unexpected k-ary turn"
  in
  loop (handle (P.Ask { session }));
  (* A second open over the same relation list hits the universe cache. *)
  (match
     handle (P.Open_kary { relations = [ "a"; "b"; "c" ]; strategy = "bu" })
   with
  | P.Opened { cache_hit = true; _ } -> ()
  | _ -> Alcotest.fail "second open_kary should hit the cache");
  (* Save then resume the session over the wire, k-ary ops throughout. *)
  let doc =
    match handle (P.Save { session }) with
    | P.Saved { doc; _ } -> doc
    | _ -> Alcotest.fail "save"
  in
  match
    handle
      (P.Resume_kary
         { relations = [ "a"; "b"; "c" ]; strategy = None; doc })
  with
  | P.Opened { session = _; _ } -> ()
  | _ -> Alcotest.fail "resume_kary"

let test_service_kary_errors () =
  let catalog = fh_catalog () in
  let manager = Manager.create catalog in
  let handle = Service.handle manager in
  (match handle (P.Open_kary { relations = [ "Flight" ]; strategy = "td" }) with
  | P.Error { code = "invalid"; _ } -> ()
  | _ -> Alcotest.fail "fewer than two relations");
  (match
     handle
       (P.Open_kary { relations = [ "Flight"; "zz"; "Hotel" ]; strategy = "td" })
   with
  | P.Error { code = "unknown_relation"; _ } -> ()
  | _ -> Alcotest.fail "unknown relation in the list");
  match
    handle
      (P.Resume_kary
         {
           relations = [ "Flight"; "Hotel" ];
           strategy = None;
           doc = Json.Obj [];
         })
  with
  | P.Error { code = "corrupt_session"; _ } -> ()
  | _ -> Alcotest.fail "corrupt k-ary resume"

(* The delta frame over the wire: cells parse under the loaded schema,
   the cache reports patch work, and open sessions ride through. *)
let test_service_delta () =
  with_temp_csvs (fun r_path p_path ->
      let manager = Manager.create (Catalog.create ()) in
      let handle = Service.handle manager in
      (match handle (P.Load { name = Some "flight"; path = r_path }) with
      | P.Loaded _ -> ()
      | _ -> Alcotest.fail "load flight");
      (match handle (P.Load { name = Some "hotel"; path = p_path }) with
      | P.Loaded _ -> ()
      | _ -> Alcotest.fail "load hotel");
      let session =
        match
          handle (P.Open_session { r = "flight"; p = "hotel"; strategy = "td" })
        with
        | P.Opened { session; _ } -> session
        | _ -> Alcotest.fail "open"
      in
      let row0 =
        List.map Jqi_relational.Value.to_string
          (Tuple.to_list (Relation.rows Fixtures.flight).(0))
      in
      (match
         handle (P.Delta { relation = "flight"; insert = [ row0 ]; delete = [] })
       with
      | P.Delta_applied
          { d_relation; d_added; d_removed; d_recertified; d_stale; _ } ->
          Alcotest.(check string) "relation echoed" "flight" d_relation;
          Alcotest.(check int) "added" 1 d_added;
          Alcotest.(check int) "removed" 0 d_removed;
          Alcotest.(check (list string))
            "open session re-certified" [ session ] d_recertified;
          Alcotest.(check (list (pair string string)))
            "nobody stale" [] d_stale
      | _ -> Alcotest.fail "delta_applied expected");
      (* Deleting the row we just inserted round-trips the relation. *)
      (match
         handle (P.Delta { relation = "flight"; insert = []; delete = [ row0 ] })
       with
      | P.Delta_applied { d_removed; _ } ->
          Alcotest.(check int) "removed" 1 d_removed
      | _ -> Alcotest.fail "delete delta_applied expected");
      (match
         handle
           (P.Delta { relation = "flight"; insert = [ [ "x" ] ]; delete = [] })
       with
      | P.Error { code = "bad_delta"; _ } -> ()
      | _ -> Alcotest.fail "arity mismatch must be bad_delta");
      (match
         handle
           (P.Delta
              { relation = "flight"; insert = []; delete = [ [ "z"; "z"; "z" ] ] })
       with
      | P.Error { code = "bad_delta"; _ } -> ()
      | _ -> Alcotest.fail "unmatched remove must be bad_delta");
      (match handle (P.Delta { relation = "nope"; insert = []; delete = [] }) with
      | P.Error { code = "unknown_relation"; _ } -> ()
      | _ -> Alcotest.fail "unknown relation");
      (* The session still serves questions after the churn. *)
      match handle (P.Ask { session }) with
      | P.Question _ -> ()
      | _ -> Alcotest.fail "session must answer after churn")

let test_service_errors () =
  let manager = Manager.create (fh_catalog ()) in
  let handle = Service.handle manager in
  (match handle (P.Hello { versions = [ 99 ] }) with
  | P.Error { code = "version"; _ } -> ()
  | _ -> Alcotest.fail "bad hello");
  (match handle (P.Load { name = None; path = "/does/not/exist.csv" }) with
  | P.Error { code = "io"; _ } -> ()
  | _ -> Alcotest.fail "missing file");
  (match handle (P.Open_session { r = "zz"; p = "Hotel"; strategy = "td" }) with
  | P.Error { code = "unknown_relation"; _ } -> ()
  | _ -> Alcotest.fail "unknown relation");
  (match handle (P.Ask { session = "s9" }) with
  | P.Error { code = "unknown_session"; _ } -> ()
  | _ -> Alcotest.fail "unknown session");
  (match
     handle
       (P.Resume
          { r = "Flight"; p = "Hotel"; strategy = None; doc = Json.Obj [] })
   with
  | P.Error { code = "corrupt_session"; _ } -> ()
  | _ -> Alcotest.fail "corrupt resume");
  (* handle_line turns an undecodable line into an ok:false frame. *)
  let reply = Service.handle_line manager "{\"v\":1,\"id\":5,\"op\":\"zap\"}" in
  match P.decode_response reply with
  | Ok (5, P.Error { code = "unsupported"; _ }) -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected an encoded error frame"

let suite =
  [
    Alcotest.test_case "catalog cache" `Quick test_catalog_cache;
    Alcotest.test_case "catalog names" `Quick test_catalog_names;
    Alcotest.test_case "relation fingerprints" `Quick test_fingerprint;
    Alcotest.test_case "manager lifecycle" `Quick test_manager_lifecycle;
    Alcotest.test_case "manager errors" `Quick test_manager_errors;
    Alcotest.test_case "manager save/resume" `Quick test_manager_save_resume;
    Alcotest.test_case "manager idle eviction" `Quick test_manager_idle_eviction;
    Alcotest.test_case "eviction autosaves a pending question" `Quick
      test_eviction_autosaves_pending;
    Alcotest.test_case "delta re-certifies open sessions" `Quick
      test_manager_delta_recertify;
    Alcotest.test_case "delta flags contradicted sessions stale" `Quick
      test_manager_delta_stale;
    Alcotest.test_case "resume of a deleted pending question is stale_label"
      `Quick test_resume_stale_pending;
    Alcotest.test_case "eviction after churn still autosaves" `Quick
      test_eviction_after_churn;
    QCheck_alcotest.to_alcotest qcheck_request_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_response_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_decoder_total;
    Alcotest.test_case "decoder yields error frames" `Quick test_decode_garbage;
    Alcotest.test_case "version negotiation" `Quick test_negotiate;
    Alcotest.test_case "service full session" `Quick test_service_full_flight;
    Alcotest.test_case "service k-ary session" `Quick test_service_kary_flight;
    Alcotest.test_case "service k-ary error frames" `Quick
      test_service_kary_errors;
    Alcotest.test_case "service delta frames" `Quick test_service_delta;
    Alcotest.test_case "service error frames" `Quick test_service_errors;
  ]
