(* The lookahead acceleration layer, gated end-to-end by a differential
   oracle: the fast engine (incremental certainty views, canonical-state
   memoization, skyline pruning, optional domain fan-out) must return the
   same entropies and make the same choices as [Entropy.reference_k], the
   direct transcription of Algorithms 4/5, on randomized universes — plus
   seeded regressions pinning the paper's Figure 5 and §4.4 values. *)

open Fixtures
module Bits = Jqi_util.Bits
module Omega = Jqi_core.Omega
module Universe = Jqi_core.Universe
module State = Jqi_core.State
module Sample = Jqi_core.Sample
module Entropy = Jqi_core.Entropy
module Strategy = Jqi_core.Strategy
module Oracle = Jqi_core.Oracle
module Inference = Jqi_core.Inference
module Minimax = Jqi_core.Minimax

(* ------------------------------------------------------------------ *)
(* Random-universe scenarios.                                          *)
(* ------------------------------------------------------------------ *)

(* A scenario describes a universe over Ω = n × m (signatures as
   bitmasks with multiplicities), a label recipe replayed consistently
   (certain or already-labeled picks are skipped, so the sample can never
   become inconsistent), and a goal predicate for full-run properties. *)
type scenario = {
  n : int;
  m : int;
  sigs : (int * int) list; (* (signature bitmask, multiplicity) *)
  labels : (int * bool) list; (* (class pick, positive?) *)
  goal : int; (* goal predicate bitmask *)
}

let bits_of_mask w mask =
  Bits.of_list w (List.filter (fun i -> mask land (1 lsl i) <> 0) (List.init w Fun.id))

let universe_of_scenario sc =
  let omega = Omega.create ~n:sc.n ~m:sc.m () in
  let w = Omega.width omega in
  ( omega,
    Universe.of_signature_list omega
      (List.map (fun (mask, count) -> (bits_of_mask w mask, count, (0, 0))) sc.sigs) )

let state_of_scenario u sc =
  let st = State.create u in
  List.iter
    (fun (pick, positive) ->
      let i = pick mod Universe.n_classes u in
      if State.label_of st i = None && State.certain_label st i = None then
        State.label st i (Sample.label_of_bool positive))
    sc.labels;
  st

let gen_scenario =
  QCheck.Gen.(
    let* n = int_range 1 3 and* m = int_range 1 3 in
    let w = n * m in
    let* n_classes = int_range 1 12 in
    let* sigs =
      list_size (return n_classes)
        (pair (int_bound ((1 lsl w) - 1)) (int_range 1 4))
    in
    let* labels = list_size (int_bound 3) (pair (int_bound 64) bool) in
    let* goal = int_bound ((1 lsl w) - 1) in
    return { n; m; sigs; labels; goal })

let print_scenario sc =
  Printf.sprintf "n=%d m=%d sigs=[%s] labels=[%s] goal=%#x" sc.n sc.m
    (String.concat ";"
       (List.map (fun (s, c) -> Printf.sprintf "%#x*%d" s c) sc.sigs))
    (String.concat ";"
       (List.map (fun (i, b) -> Printf.sprintf "%d%c" i (if b then '+' else '-')) sc.labels))
    sc.goal

let arb_scenario = QCheck.make gen_scenario ~print:print_scenario

(* ------------------------------------------------------------------ *)
(* Differential properties: fast engine vs the reference oracle.       *)
(* ------------------------------------------------------------------ *)

(* The acceptance gate: ≥ 500 randomized universes where every informative
   class gets identical entropy^k from both engines, for k = 1 and 2, and
   the fast round scorer's exact entries agree too. *)
let entropy_matches_reference =
  QCheck.Test.make ~name:"fast entropy_k = reference_k (k=1,2)" ~count:500
    arb_scenario (fun sc ->
      let _, u = universe_of_scenario sc in
      let st = state_of_scenario u sc in
      let is = State.informative_classes st in
      List.for_all
        (fun k ->
          List.for_all
            (fun i -> Entropy.equal (Entropy.entropy_k st k i) (Entropy.reference_k st k i))
            is
          && List.for_all
               (fun (i, e) ->
                 match e with
                 | None -> true
                 | Some e -> Entropy.equal e (Entropy.reference_k st k i))
               (Entropy.score st ~k))
        [ 1; 2 ])

let entropy3_matches_reference =
  QCheck.Test.make ~name:"fast entropy_k = reference_k (k=3)" ~count:60
    arb_scenario (fun sc ->
      let _, u = universe_of_scenario sc in
      let st = state_of_scenario u sc in
      List.for_all
        (fun i -> Entropy.equal (Entropy.entropy_k st 3 i) (Entropy.reference_k st 3 i))
        (State.informative_classes st))

(* Fast and reference skylines agree on the chosen class at every round of
   a full inference run — the trace (class, label) lists are identical. *)
let trace strategy u goal =
  let result = Inference.run u strategy (Oracle.honest ~goal) in
  result.Inference.steps

let strategy_choices_match_reference =
  QCheck.Test.make ~name:"fast LkS runs = reference LkS runs (k=1,2)" ~count:150
    arb_scenario (fun sc ->
      let omega, u = universe_of_scenario sc in
      let goal = bits_of_mask (Omega.width omega) sc.goal in
      List.for_all
        (fun k -> trace (Strategy.lks k) u goal = trace (Strategy.lks_reference k) u goal)
        [ 1; 2 ])

(* ------------------------------------------------------------------ *)
(* Canonicalization: idempotence and state-equivalence.                *)
(* ------------------------------------------------------------------ *)

type key_case = { kw : int; ktpos : int; knegs : int list; kprobe : int list }

let gen_key_case =
  QCheck.Gen.(
    let* kw = int_range 1 9 in
    let top = (1 lsl kw) - 1 in
    let* ktpos = int_bound top in
    let* knegs = list_size (int_bound 5) (int_bound top) in
    let* kprobe = list_size (int_range 1 8) (int_bound top) in
    return { kw; ktpos; knegs; kprobe })

let arb_key_case =
  QCheck.make gen_key_case ~print:(fun c ->
      Printf.sprintf "w=%d tpos=%#x negs=[%s]" c.kw c.ktpos
        (String.concat ";" (List.map (Printf.sprintf "%#x") c.knegs)))

let canonical_idempotent =
  QCheck.Test.make ~name:"Minimax.canonical is idempotent" ~count:300
    arb_key_case (fun c ->
      let tpos = bits_of_mask c.kw c.ktpos in
      let negs = List.map (bits_of_mask c.kw) c.knegs in
      let k = Minimax.canonical ~tpos ~negs in
      let k' = Minimax.canonical ~tpos:k.State.Key.tpos ~negs:k.State.Key.negs in
      State.Key.equal k k')

(* Canonical keys preserve the certain sets: every probe signature gets
   the same certain label under (tpos, negs) and under the canonical
   antichain — the soundness of memoizing lookahead values on the key. *)
let canonical_state_equivalent =
  QCheck.Test.make ~name:"canonical key preserves certain labels" ~count:300
    arb_key_case (fun c ->
      let tpos = bits_of_mask c.kw c.ktpos in
      let negs = List.map (bits_of_mask c.kw) c.knegs in
      let k = Minimax.canonical ~tpos ~negs in
      List.for_all
        (fun mask ->
          let s = bits_of_mask c.kw mask in
          State.certain_label_sig ~tpos ~negs s
          = State.certain_label_sig ~tpos:k.State.Key.tpos ~negs:k.State.Key.negs s)
        c.kprobe)

(* The incremental view must agree with a from-scratch rescan after any
   chain of virtual extensions. *)
let view_matches_rescan =
  QCheck.Test.make ~name:"State.view_extend = full rescan" ~count:300
    arb_scenario (fun sc ->
      let omega, u = universe_of_scenario sc in
      let st = state_of_scenario u sc in
      let w = Omega.width omega in
      (* Reuse the scenario's goal mask as one extension signature and the
         first class signatures as others. *)
      let extras =
        (bits_of_mask w sc.goal, Sample.Positive)
        :: (match State.informative_classes st with
           | i :: j :: _ ->
               [ (Universe.signature u i, Sample.Negative);
                 (Universe.signature u j, Sample.Positive) ]
           | [ i ] -> [ (Universe.signature u i, Sample.Negative) ]
           | [] -> [])
      in
      let rec check view extras =
        let tpos, negs = (view.State.vtpos, view.State.vnegs) in
        let informative =
          List.filter
            (fun i ->
              State.certain_label_sig ~tpos ~negs (Universe.signature u i) = None)
            (List.init (Universe.n_classes u) Fun.id)
        in
        let weight =
          List.fold_left (fun acc i -> acc + Universe.count u i) 0 informative
        in
        view.State.vinf = informative
        && view.State.vinf_tuples = weight
        && match extras with
           | [] -> true
           | e :: rest -> check (State.view_extend st view e) rest
      in
      check (State.view st) extras)

(* ------------------------------------------------------------------ *)
(* Parallel determinism.                                               *)
(* ------------------------------------------------------------------ *)

(* Candidate scoring fanned out over 2 and 4 domains yields byte-identical
   inference traces to the sequential fast run (deterministic tie-breaking
   by class index), which is itself trace-identical to the reference. *)
let parallel_scoring_deterministic =
  QCheck.Test.make ~name:"lks_par traces = sequential traces" ~count:40
    arb_scenario (fun sc ->
      let omega, u = universe_of_scenario sc in
      let goal = bits_of_mask (Omega.width omega) sc.goal in
      let sequential = trace (Strategy.lks 2) u goal in
      List.for_all
        (fun domains -> trace (Strategy.lks_par ~domains 2) u goal = sequential)
        [ 1; 2; 4 ])

let check_same_universe u1 u2 =
  Alcotest.(check int) "same class count" (Universe.n_classes u1)
    (Universe.n_classes u2);
  for i = 0 to Universe.n_classes u1 - 1 do
    Alcotest.check bits_testable "same signature" (Universe.signature u1 i)
      (Universe.signature u2 i);
    Alcotest.(check int) "same count" (Universe.count u1 i) (Universe.count u2 i);
    Alcotest.(check (array int)) "same representative"
      (Universe.cls u1 i).Universe.rep
      (Universe.cls u2 i).Universe.rep
  done

(* Adversarial chunk boundaries: fewer rows than domains, and a single
   row (every chunk but one is empty). *)
let test_build_parallel_adversarial_chunks () =
  let module Relation = Jqi_relational.Relation in
  let module Tuple = Jqi_relational.Tuple in
  let module Schema = Jqi_relational.Schema in
  let schema = Schema.of_names ~ty:Jqi_relational.Value.TInt [ "a"; "b" ] in
  let mk name rows = Relation.of_list ~name ~schema rows in
  let p = mk "p" [ Tuple.ints [ 0; 1 ]; Tuple.ints [ 1; 1 ]; Tuple.ints [ 2; 0 ] ] in
  let r1 = mk "r1" [ Tuple.ints [ 0; 1 ] ] in
  let r2 = mk "r2" [ Tuple.ints [ 0; 1 ]; Tuple.ints [ 1; 2 ] ] in
  List.iter
    (fun domains ->
      check_same_universe (Universe.build r1 p) (Universe.build_parallel ~domains r1 p);
      check_same_universe (Universe.build r2 p) (Universe.build_parallel ~domains r2 p))
    [ 1; 2; 4 ]

let test_build_parallel_domain_sweep () =
  let prng = Jqi_util.Prng.create 2014 in
  let r, p = Jqi_synth.Synth.generate prng (Jqi_synth.Synth.config 3 3 40 20) in
  let sequential = Universe.build r p in
  List.iter
    (fun domains ->
      check_same_universe sequential (Universe.build_parallel ~domains r p))
    [ 1; 2; 4 ]

let test_parallel_score_choice_identity () =
  (* On the §4.4 walk-through state, every domain count picks (t2,t'1). *)
  let st = State.create universe0 in
  State.label st (class0 (1, 3)) Sample.Positive;
  State.label st (class0 (3, 1)) Sample.Negative;
  List.iter
    (fun domains ->
      match Strategy.choose (Strategy.lks_par ~domains 2) st with
      | Some c ->
          Alcotest.(check int)
            (Printf.sprintf "choice at %d domains" domains)
            (class0 (2, 1)) c
      | None -> Alcotest.fail "lks_par returned nothing")
    [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Seeded regressions: Figure 5 and the §4.4 walk-through.             *)
(* ------------------------------------------------------------------ *)

(* Figure 5's counting convention: u± excludes the queried tuples, so the
   ∅-signature tuple (t3,t'1) has u⁺ = 11 (not 12) on the empty sample —
   pinned against both engines. *)
let test_fig5_u_plus_11_convention () =
  let st = State.create universe0 in
  let cls = class0 (3, 1) in
  Alcotest.check entropy_testable "fast engine" (Entropy.make 0 11)
    (Entropy.entropy1 st cls);
  Alcotest.check entropy_testable "reference engine" (Entropy.make 0 11)
    (Entropy.reference1 st cls)

(* Both engines reproduce the full (corrected) Figure 5 table. *)
let test_fig5_full_table_both_engines () =
  let st = State.create universe0 in
  List.iter
    (fun i ->
      Alcotest.check entropy_testable
        (Printf.sprintf "class %d" i)
        (Entropy.reference1 st i) (Entropy.entropy1 st i))
    (State.informative_classes st)

(* §4.4 walk-through: from S = {(t1,t'3)+, (t3,t'1)−}, entropy² of
   (t2,t'1) is (3,3) and L2S chooses it — fast, parallel and reference. *)
let walkthrough_state () =
  let st = State.create universe0 in
  State.label st (class0 (1, 3)) Sample.Positive;
  State.label st (class0 (3, 1)) Sample.Negative;
  st

let test_walkthrough_l2s_choices () =
  let st = walkthrough_state () in
  Alcotest.check entropy_testable "entropy² fast" (Entropy.make 3 3)
    (Entropy.entropy_k st 2 (class0 (2, 1)));
  Alcotest.check entropy_testable "entropy² reference" (Entropy.make 3 3)
    (Entropy.reference_k st 2 (class0 (2, 1)));
  List.iter
    (fun (name, strategy) ->
      match Strategy.choose strategy st with
      | Some c -> Alcotest.(check int) name (class0 (2, 1)) c
      | None -> Alcotest.fail (name ^ " returned nothing"))
    [
      ("L2S fast", Strategy.l2s);
      ("L2S reference", Strategy.lks_reference 2);
      ("L2S parallel", Strategy.lks_par ~domains:2 2);
    ]

(* Full L2S inference on Example 2.1 agrees step by step across engines
   for a spread of goals. *)
let test_l2s_full_runs_example21 () =
  List.iter
    (fun goal ->
      Alcotest.(check (list (pair int bool)))
        "same trace"
        (List.map
           (fun (c, l) -> (c, Sample.bool_of_label l))
           (trace (Strategy.lks_reference 2) universe0 goal))
        (List.map
           (fun (c, l) -> (c, Sample.bool_of_label l))
           (trace Strategy.l2s universe0 goal)))
    [ pred0 []; pred0 [ (0, 2) ]; pred0 [ (0, 0); (1, 2) ]; Omega.full omega0 ]

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      entropy_matches_reference;
      entropy3_matches_reference;
      strategy_choices_match_reference;
      canonical_idempotent;
      canonical_state_equivalent;
      view_matches_rescan;
      parallel_scoring_deterministic;
    ]
  @ [
      Alcotest.test_case "build_parallel adversarial chunks" `Quick
        test_build_parallel_adversarial_chunks;
      Alcotest.test_case "build_parallel domain sweep" `Quick
        test_build_parallel_domain_sweep;
      Alcotest.test_case "parallel score choice identity" `Quick
        test_parallel_score_choice_identity;
      Alcotest.test_case "Fig 5 u+=11 convention" `Quick
        test_fig5_u_plus_11_convention;
      Alcotest.test_case "Fig 5 table, both engines" `Quick
        test_fig5_full_table_both_engines;
      Alcotest.test_case "§4.4 L2S choices" `Quick test_walkthrough_l2s_choices;
      Alcotest.test_case "L2S full runs on Example 2.1" `Quick
        test_l2s_full_runs_example21;
    ]
