(* SQL layer: lexer, parser, printer round-trips, execution semantics, and
   agreement with the relational algebra and join evaluators. *)

module Value = Jqi_relational.Value
module Schema = Jqi_relational.Schema
module Tuple = Jqi_relational.Tuple
module Relation = Jqi_relational.Relation
module Join = Jqi_relational.Join
module Ast = Jqi_sql.Ast
module Lexer = Jqi_sql.Lexer
module Parser = Jqi_sql.Parser
module Engine = Jqi_sql.Engine

let rel name cols rows =
  Relation.of_list ~name ~schema:(Schema.of_names ~ty:Value.TInt cols)
    (List.map Tuple.ints rows)

let users =
  Relation.of_list ~name:"users"
    ~schema:
      (Schema.of_columns
         [ Schema.column "id" Value.TInt; Schema.column "name" Value.TString ])
    [
      Tuple.of_list [ Value.Int 1; Value.Str "ada" ];
      Tuple.of_list [ Value.Int 2; Value.Str "bob" ];
      Tuple.of_list [ Value.Int 3; Value.Str "eve" ];
    ]

let orders =
  Relation.of_list ~name:"orders"
    ~schema:
      (Schema.of_columns
         [
           Schema.column "oid" Value.TInt; Schema.column "uid" Value.TInt;
           Schema.column "total" Value.TInt;
         ])
    [
      Tuple.ints [ 10; 1; 100 ];
      Tuple.ints [ 11; 1; 50 ];
      Tuple.ints [ 12; 2; 70 ];
      Tuple.ints [ 13; 9; 10 ];
    ]

let catalog = [ ("users", users); ("orders", orders) ]

let run sql = Engine.query catalog sql

let ints_of rel col =
  List.map
    (fun row ->
      match Tuple.get row (Schema.index_of_exn (Relation.schema rel) col) with
      | Value.Int i -> i
      | _ -> min_int)
    (Relation.to_list rel)

(* ----------------------------- lexer ------------------------------ *)

let test_lexer_basics () =
  let toks = List.map fst (Lexer.tokenize "SELECT a, b FROM t WHERE x <= 3.5") in
  Alcotest.(check bool) "shape" true
    (toks
    = [
        Lexer.SELECT; Lexer.IDENT "a"; Lexer.COMMA; Lexer.IDENT "b"; Lexer.FROM;
        Lexer.IDENT "t"; Lexer.WHERE; Lexer.IDENT "x"; Lexer.LE;
        Lexer.FLOAT_LIT 3.5; Lexer.EOF;
      ])

let test_lexer_case_insensitive_keywords () =
  let toks = List.map fst (Lexer.tokenize "select From WHERE") in
  Alcotest.(check bool) "keywords" true
    (toks = [ Lexer.SELECT; Lexer.FROM; Lexer.WHERE; Lexer.EOF ])

let test_lexer_strings_and_quotes () =
  let toks = List.map fst (Lexer.tokenize "'it''s' \"SELECT\"") in
  Alcotest.(check bool) "escapes" true
    (toks = [ Lexer.STRING "it's"; Lexer.IDENT "SELECT"; Lexer.EOF ]);
  Alcotest.(check bool) "unterminated string raises" true
    (try ignore (Lexer.tokenize "'oops"); false with Lexer.Error _ -> true)

let test_lexer_operators () =
  let toks = List.map fst (Lexer.tokenize "= <> != < <= > >=") in
  Alcotest.(check bool) "ops" true
    (toks
    = [ Lexer.EQ; Lexer.NE; Lexer.NE; Lexer.LT; Lexer.LE; Lexer.GT; Lexer.GE; Lexer.EOF ])

(* ----------------------------- parser ----------------------------- *)

let parse_ok sql =
  match Parser.parse_result sql with
  | Ok q -> q
  | Result.Error e -> Alcotest.failf "parse failed: %s" e

let test_parse_simple () =
  let q = parse_ok "SELECT * FROM users" in
  Alcotest.(check bool) "star" true (q.select = [ Ast.Star ]);
  Alcotest.(check string) "table" "users" q.from.table

let test_parse_join_on () =
  let q = parse_ok "SELECT * FROM users u JOIN orders o ON u.id = o.uid" in
  (match q.joins with
  | [ (Ast.Inner, src, Some (Ast.Cmp (Ast.Eq, Ast.Col (Some "u", "id"), Ast.Col (Some "o", "uid")))) ]
    ->
      Alcotest.(check (option string)) "alias" (Some "o") src.alias
  | _ -> Alcotest.fail "unexpected join shape");
  Alcotest.(check (option string)) "from alias" (Some "u") q.from.alias

let test_parse_precedence () =
  (* AND binds tighter than OR; NOT tighter than AND. *)
  let q = parse_ok "SELECT * FROM t WHERE a = 1 OR NOT b = 2 AND c = 3" in
  match q.where with
  | Some (Ast.Or (Ast.Cmp _, Ast.And (Ast.Not (Ast.Cmp _), Ast.Cmp _))) -> ()
  | _ -> Alcotest.fail "precedence wrong"

let test_parse_errors () =
  let bad sql =
    match Parser.parse_result sql with
    | Ok _ -> Alcotest.failf "expected failure on %S" sql
    | Result.Error _ -> ()
  in
  bad "SELECT";
  bad "SELECT * FROM";
  bad "SELECT * FROM t JOIN u";  (* missing ON *)
  bad "SELECT * FROM t WHERE a";
  bad "SELECT * FROM t LIMIT x";
  bad "SELECT * FROM t extra garbage ,"

let test_print_parse_roundtrip () =
  List.iter
    (fun sql ->
      let q = parse_ok sql in
      let printed = Ast.to_string q in
      let q' = parse_ok printed in
      Alcotest.(check string) ("roundtrip " ^ sql) printed (Ast.to_string q'))
    [
      "SELECT * FROM users";
      "SELECT DISTINCT name FROM users ORDER BY name DESC LIMIT 2";
      "SELECT u.name AS who, o.total FROM users AS u JOIN orders AS o ON u.id = o.uid";
      "SELECT * FROM users SEMI JOIN orders ON id = uid";
      "SELECT * FROM users CROSS JOIN orders WHERE total >= 50 AND name <> 'bob'";
      "SELECT * FROM users WHERE name IS NOT NULL OR id IS NULL";
    ]

let test_keyword_list_in_sync () =
  (* The printer's keyword list must match the lexer: every entry must
     lex to a keyword token (not IDENT), and conversely every identifier
     the lexer keywordizes must be in the printer's list. *)
  List.iter
    (fun kw ->
      match Lexer.tokenize kw with
      | [ (Lexer.IDENT _, _); _ ] ->
          Alcotest.failf "printer quotes %S but lexer does not keywordize it" kw
      | _ -> ())
    Ast.keywords;
  (* Sample of identifiers that must NOT be keywords. *)
  List.iter
    (fun w ->
      match Lexer.tokenize w with
      | [ (Lexer.IDENT _, _); _ ] -> ()
      | _ ->
          if not (List.mem (String.lowercase_ascii w) Ast.keywords) then
            Alcotest.failf "lexer keywordizes %S but printer does not quote it" w)
    [ "selects"; "fromm"; "users"; "onx" ]

let test_of_equijoin () =
  let q = Ast.of_equijoin ~r:"users" ~p:"orders" [ ("id", "uid") ] in
  Alcotest.(check string) "sql"
    "SELECT * FROM users JOIN orders ON users.id = orders.uid"
    (Ast.to_string q);
  let empty = Ast.of_equijoin ~r:"a" ~p:"b" [] in
  Alcotest.(check string) "cross for empty predicate"
    "SELECT * FROM a CROSS JOIN b" (Ast.to_string empty);
  let semi = Ast.of_semijoin ~r:"a" ~p:"b" [ ("x", "y") ] in
  Alcotest.(check string) "semi" "SELECT * FROM a SEMI JOIN b ON a.x = b.y"
    (Ast.to_string semi)

(* ---------------------------- execution --------------------------- *)

let test_exec_select_where () =
  let result = run "SELECT * FROM orders WHERE total >= 70" in
  Alcotest.(check (list int)) "oids" [ 10; 12 ] (ints_of result "oid")

let test_exec_projection () =
  let result = run "SELECT name AS who FROM users ORDER BY id DESC" in
  Alcotest.(check (list string)) "schema" [ "who" ]
    (Schema.names (Relation.schema result));
  Alcotest.(check int) "rows" 3 (Relation.cardinality result)

let test_exec_join_agrees_with_evaluator () =
  let by_sql = run "SELECT * FROM users JOIN orders ON id = uid" in
  let by_join = Join.equijoin users orders [ (0, 1) ] in
  Alcotest.(check int) "same cardinality" (Relation.cardinality by_join)
    (Relation.cardinality by_sql);
  (* Same multiset of rows (column order matches: users ++ orders). *)
  Alcotest.(check bool) "same rows" true
    (Relation.equal_contents
       (Relation.create ~name:"a" ~schema:(Relation.schema by_join) (Relation.rows by_join))
       (Relation.create ~name:"a" ~schema:(Relation.schema by_join) (Relation.rows by_sql)))

let test_exec_join_with_residual () =
  let result =
    run "SELECT * FROM users JOIN orders ON id = uid AND total > 60"
  in
  Alcotest.(check (list int)) "filtered" [ 10; 12 ] (ints_of result "oid")

let test_exec_semi_anti () =
  let semi = run "SELECT * FROM users SEMI JOIN orders ON id = uid" in
  Alcotest.(check (list int)) "users with orders" [ 1; 2 ] (ints_of semi "id");
  let anti = run "SELECT * FROM users ANTI JOIN orders ON id = uid" in
  Alcotest.(check (list int)) "users without orders" [ 3 ] (ints_of anti "id");
  let by_eval = Join.semijoin users orders [ (0, 1) ] in
  Alcotest.(check int) "agrees with evaluator" (Relation.cardinality by_eval)
    (Relation.cardinality semi)

let test_exec_cross () =
  let result = run "SELECT * FROM users CROSS JOIN orders" in
  Alcotest.(check int) "cartesian" 12 (Relation.cardinality result)

let test_exec_distinct_limit () =
  let result = run "SELECT DISTINCT uid FROM orders ORDER BY uid" in
  Alcotest.(check (list int)) "distinct uids" [ 1; 2; 9 ] (ints_of result "uid");
  let limited = run "SELECT oid FROM orders ORDER BY total DESC LIMIT 2" in
  Alcotest.(check (list int)) "top2 by total" [ 10; 12 ] (ints_of limited "oid")

let test_exec_qualified_and_ambiguous () =
  let result =
    run "SELECT u.id FROM users u JOIN orders o ON u.id = o.uid WHERE o.total < 60"
  in
  Alcotest.(check (list int)) "qualified" [ 1 ] (ints_of result "id");
  Alcotest.(check bool) "ambiguous unqualified raises" true
    (try
       ignore (run "SELECT id FROM users a JOIN users b ON a.id = b.id WHERE id = 1");
       false
     with Engine.Error _ -> true)

let test_exec_star_disambiguation () =
  (* Self-join: SELECT * must not produce duplicate column names. *)
  let result = run "SELECT * FROM users a JOIN users b ON a.id = b.id" in
  let names = Schema.names (Relation.schema result) in
  Alcotest.(check int) "no duplicate names" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_exec_null_semantics () =
  let with_null =
    Relation.of_list ~name:"n"
      ~schema:(Schema.of_columns [ Schema.column "v" Value.TInt ])
      [ Tuple.of_list [ Value.Int 1 ]; Tuple.of_list [ Value.Null ] ]
  in
  let cat = [ ("n", with_null) ] in
  Alcotest.(check int) "v = v excludes NULL row" 1
    (Relation.cardinality (Engine.query cat "SELECT * FROM n WHERE v = v"));
  Alcotest.(check int) "IS NULL finds it" 1
    (Relation.cardinality (Engine.query cat "SELECT * FROM n WHERE v IS NULL"));
  Alcotest.(check int) "v <> 1 is false for NULL" 0
    (Relation.cardinality (Engine.query cat "SELECT * FROM n WHERE v <> 1"))

let test_exec_unknown_table_column () =
  Alcotest.(check bool) "unknown table" true
    (try ignore (run "SELECT * FROM nope"); false with Engine.Error _ -> true);
  Alcotest.(check bool) "unknown column" true
    (try ignore (run "SELECT zz FROM users"); false with Engine.Error _ -> true)

(* ------------------------- GROUP BY / aggregates ------------------- *)

let test_group_by_count () =
  let result =
    run "SELECT uid, COUNT(*) AS n FROM orders GROUP BY uid ORDER BY uid"
  in
  Alcotest.(check (list string)) "schema" [ "uid"; "n" ]
    (Schema.names (Relation.schema result));
  Alcotest.(check (list int)) "uids" [ 1; 2; 9 ] (ints_of result "uid");
  Alcotest.(check (list int)) "counts" [ 2; 1; 1 ] (ints_of result "n")

let test_group_by_sum_min_max () =
  let result =
    run
      "SELECT uid, SUM(total) AS s, MIN(total) AS lo, MAX(total) AS hi \
       FROM orders GROUP BY uid ORDER BY uid"
  in
  Alcotest.(check (list int)) "sums" [ 150; 70; 10 ] (ints_of result "s");
  Alcotest.(check (list int)) "mins" [ 50; 70; 10 ] (ints_of result "lo");
  Alcotest.(check (list int)) "maxs" [ 100; 70; 10 ] (ints_of result "hi")

let test_aggregate_without_group_by () =
  let result = run "SELECT COUNT(*) AS n, SUM(total) AS s FROM orders" in
  Alcotest.(check int) "one row" 1 (Relation.cardinality result);
  Alcotest.(check (list int)) "count" [ 4 ] (ints_of result "n");
  Alcotest.(check (list int)) "sum" [ 230 ] (ints_of result "s")

let test_aggregate_over_empty () =
  let result = run "SELECT COUNT(*) AS n FROM orders WHERE total > 9999" in
  Alcotest.(check (list int)) "count 0" [ 0 ] (ints_of result "n");
  let s = run "SELECT SUM(total) AS s FROM orders WHERE total > 9999" in
  Alcotest.check Fixtures.value_testable "sum of nothing is NULL" Value.Null
    (Tuple.get (Relation.row s 0) 0)

let test_avg () =
  let result = run "SELECT AVG(total) AS a FROM orders" in
  match Tuple.get (Relation.row result 0) 0 with
  | Value.Float f -> Alcotest.(check (float 1e-9)) "avg" 57.5 f
  | v -> Alcotest.failf "expected float, got %s" (Value.to_string v)

let test_count_skips_nulls () =
  let with_null =
    Relation.of_list ~name:"n"
      ~schema:(Schema.of_columns [ Schema.column "v" Value.TInt ])
      [ Tuple.of_list [ Value.Int 1 ]; Tuple.of_list [ Value.Null ] ]
  in
  let cat = [ ("n", with_null) ] in
  let result = Engine.query cat "SELECT COUNT(*) AS stars, COUNT(v) AS vs FROM n" in
  Alcotest.(check (list int)) "star counts rows" [ 2 ] (ints_of result "stars");
  Alcotest.(check (list int)) "arg skips nulls" [ 1 ] (ints_of result "vs")

let test_group_by_validation () =
  let bad sql =
    try
      ignore (run sql);
      Alcotest.failf "expected rejection of %S" sql
    with Engine.Error _ -> ()
  in
  bad "SELECT * FROM orders GROUP BY uid";
  bad "SELECT oid, COUNT(*) FROM orders GROUP BY uid";  (* oid not grouped *)
  bad "SELECT total FROM orders GROUP BY uid";
  bad "SELECT uid, COUNT(*) FROM orders GROUP BY uid ORDER BY total";
  bad "SELECT SUM(name) AS s FROM users"  (* non-numeric sum *)

let test_having () =
  let result =
    run
      "SELECT uid, COUNT(*) AS n FROM orders GROUP BY uid HAVING n >= 2 \
       ORDER BY uid"
  in
  Alcotest.(check (list int)) "only uid 1 kept" [ 1 ] (ints_of result "uid");
  (* HAVING can also reference grouped columns. *)
  let by_col =
    run "SELECT uid, COUNT(*) AS n FROM orders GROUP BY uid HAVING uid > 1 ORDER BY uid"
  in
  Alcotest.(check (list int)) "uids" [ 2; 9 ] (ints_of by_col "uid");
  (* HAVING without grouping is rejected. *)
  Alcotest.(check bool) "having without group rejected" true
    (try ignore (run "SELECT * FROM orders HAVING total > 1"); false
     with Engine.Error _ -> true)

let test_semi_join_non_equi () =
  (* SEMI/ANTI with a non-equality condition exercise the generic path. *)
  let semi = run "SELECT * FROM users SEMI JOIN orders ON total > 60" in
  (* Some order has total > 60, so every user survives. *)
  Alcotest.(check int) "all users kept" 3 (Relation.cardinality semi);
  let anti = run "SELECT * FROM users ANTI JOIN orders ON total > 999" in
  Alcotest.(check int) "nothing matches: all kept by anti" 3
    (Relation.cardinality anti)

let test_sum_floats () =
  let prices =
    Relation.of_list ~name:"f"
      ~schema:(Schema.of_columns [ Schema.column "p" Value.TFloat ])
      [
        Tuple.of_list [ Value.Float 1.5 ]; Tuple.of_list [ Value.Float 2.25 ];
        Tuple.of_list [ Value.Null ];
      ]
  in
  let result =
    Engine.query [ ("f", prices) ] "SELECT SUM(p) AS s, MIN(p) AS lo FROM f"
  in
  (match Tuple.get (Relation.row result 0) 0 with
  | Value.Float f -> Alcotest.(check (float 1e-9)) "sum" 3.75 f
  | v -> Alcotest.failf "expected float, got %s" (Value.to_string v));
  match Tuple.get (Relation.row result 0) 1 with
  | Value.Float f -> Alcotest.(check (float 1e-9)) "min skips null" 1.5 f
  | v -> Alcotest.failf "expected float, got %s" (Value.to_string v)

let test_arithmetic () =
  let result = run "SELECT oid, total * 2 AS double FROM orders ORDER BY oid" in
  Alcotest.(check (list int)) "doubled" [ 200; 100; 140; 20 ] (ints_of result "double");
  let where = run "SELECT oid FROM orders WHERE total - 10 >= 60 ORDER BY oid" in
  Alcotest.(check (list int)) "filtered" [ 10; 12 ] (ints_of where "oid");
  let precedence = run "SELECT 2 + 3 * 4 AS v FROM users LIMIT 1" in
  Alcotest.(check (list int)) "precedence" [ 14 ] (ints_of precedence "v");
  let parens = run "SELECT (2 + 3) * 4 AS v FROM users LIMIT 1" in
  Alcotest.(check (list int)) "parens" [ 20 ] (ints_of parens "v");
  (* Arithmetic inside aggregate arguments. *)
  let agg = run "SELECT SUM(total * 2) AS s FROM orders" in
  Alcotest.(check (list int)) "sum of doubled" [ 460 ] (ints_of agg "s")

let test_arithmetic_nulls () =
  let with_null =
    Relation.of_list ~name:"n"
      ~schema:(Schema.of_columns [ Schema.column "v" Value.TInt ])
      [ Tuple.of_list [ Value.Int 8 ]; Tuple.of_list [ Value.Null ] ]
  in
  let cat = [ ("n", with_null) ] in
  let r = Engine.query cat "SELECT v / 0 AS q, v + 1 AS s FROM n" in
  (* 8/0 is NULL; NULL+1 is NULL. *)
  Alcotest.check Fixtures.value_testable "div by zero" Value.Null
    (Tuple.get (Relation.row r 0) 0);
  Alcotest.check Fixtures.value_testable "null propagates" Value.Null
    (Tuple.get (Relation.row r 1) 1);
  Alcotest.(check bool) "string arithmetic rejected" true
    (try ignore (run "SELECT name + 1 AS x FROM users"); false
     with Engine.Error _ -> true)

let test_cond_parenthesized_expr () =
  (* '(' in conditions: both nested conditions and parenthesized
     arithmetic must parse. *)
  let a = run "SELECT oid FROM orders WHERE (total > 60 AND total < 90) ORDER BY oid" in
  Alcotest.(check (list int)) "nested cond" [ 12 ] (ints_of a "oid");
  let b = run "SELECT oid FROM orders WHERE (total + 30) = 100 ORDER BY oid" in
  Alcotest.(check (list int)) "paren expr" [ 12 ] (ints_of b "oid")

let test_group_by_join () =
  let result =
    run
      "SELECT name, COUNT(*) AS n FROM users JOIN orders ON id = uid \
       GROUP BY name ORDER BY name"
  in
  Alcotest.(check (list int)) "per-user order counts" [ 2; 1 ]
    (ints_of result "n")

(* Inferred predicates round-trip through SQL: running the emitted query
   equals evaluating the predicate directly. *)
let test_inferred_predicate_roundtrip () =
  let r = rel "r" [ "a"; "b" ] [ [ 1; 2 ]; [ 2; 3 ]; [ 3; 3 ] ] in
  let p = rel "p" [ "c"; "d" ] [ [ 2; 2 ]; [ 3; 9 ] ] in
  let cat = [ ("r", r); ("p", p) ] in
  List.iter
    (fun pairs ->
      let sql =
        Ast.to_string
          (Ast.of_equijoin ~r:"r" ~p:"p"
             (List.map
                (fun (i, j) ->
                  ( Schema.name_at (Relation.schema r) i,
                    Schema.name_at (Relation.schema p) j ))
                pairs))
      in
      let by_sql = Engine.query cat sql in
      let by_eval = Join.equijoin r p pairs in
      Alcotest.(check int) ("cardinality for " ^ sql)
        (Relation.cardinality by_eval)
        (Relation.cardinality by_sql))
    [ []; [ (0, 0) ]; [ (1, 0) ]; [ (1, 0); (1, 1) ] ]

let suite =
  [
    Alcotest.test_case "lexer basics" `Quick test_lexer_basics;
    Alcotest.test_case "lexer keywords case-insensitive" `Quick test_lexer_case_insensitive_keywords;
    Alcotest.test_case "lexer strings/quotes" `Quick test_lexer_strings_and_quotes;
    Alcotest.test_case "lexer operators" `Quick test_lexer_operators;
    Alcotest.test_case "parse simple" `Quick test_parse_simple;
    Alcotest.test_case "parse join on" `Quick test_parse_join_on;
    Alcotest.test_case "parse precedence" `Quick test_parse_precedence;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "print/parse roundtrip" `Quick test_print_parse_roundtrip;
    Alcotest.test_case "keyword lists in sync" `Quick test_keyword_list_in_sync;
    Alcotest.test_case "of_equijoin/of_semijoin" `Quick test_of_equijoin;
    Alcotest.test_case "exec select/where" `Quick test_exec_select_where;
    Alcotest.test_case "exec projection" `Quick test_exec_projection;
    Alcotest.test_case "exec join = evaluator" `Quick test_exec_join_agrees_with_evaluator;
    Alcotest.test_case "exec join residual" `Quick test_exec_join_with_residual;
    Alcotest.test_case "exec semi/anti" `Quick test_exec_semi_anti;
    Alcotest.test_case "exec cross" `Quick test_exec_cross;
    Alcotest.test_case "exec distinct/limit" `Quick test_exec_distinct_limit;
    Alcotest.test_case "exec qualification" `Quick test_exec_qualified_and_ambiguous;
    Alcotest.test_case "exec star disambiguation" `Quick test_exec_star_disambiguation;
    Alcotest.test_case "exec null semantics" `Quick test_exec_null_semantics;
    Alcotest.test_case "exec name errors" `Quick test_exec_unknown_table_column;
    Alcotest.test_case "group by count" `Quick test_group_by_count;
    Alcotest.test_case "group by sum/min/max" `Quick test_group_by_sum_min_max;
    Alcotest.test_case "aggregate without group by" `Quick test_aggregate_without_group_by;
    Alcotest.test_case "aggregate over empty input" `Quick test_aggregate_over_empty;
    Alcotest.test_case "avg" `Quick test_avg;
    Alcotest.test_case "count null handling" `Quick test_count_skips_nulls;
    Alcotest.test_case "group by validation" `Quick test_group_by_validation;
    Alcotest.test_case "having" `Quick test_having;
    Alcotest.test_case "semi join non-equi" `Quick test_semi_join_non_equi;
    Alcotest.test_case "sum over floats" `Quick test_sum_floats;
    Alcotest.test_case "arithmetic" `Quick test_arithmetic;
    Alcotest.test_case "arithmetic nulls" `Quick test_arithmetic_nulls;
    Alcotest.test_case "parenthesized cond vs expr" `Quick test_cond_parenthesized_expr;
    Alcotest.test_case "group by over join" `Quick test_group_by_join;
    Alcotest.test_case "inferred predicate roundtrip" `Quick test_inferred_predicate_roundtrip;
  ]
