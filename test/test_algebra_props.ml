(* qcheck properties for the algebra operators: set-semantics operators
   mirror a reference implementation over tuple sets. *)

module Value = Jqi_relational.Value
module Schema = Jqi_relational.Schema
module Tuple = Jqi_relational.Tuple
module Relation = Jqi_relational.Relation
module Algebra = Jqi_relational.Algebra
module TS = Relation.Tuple_set

let gen_rel =
  QCheck.Gen.(
    let cell =
      frequency [ (5, map (fun i -> Value.Int i) (int_bound 3)); (1, return Value.Null) ]
    in
    let* arity = int_range 1 3 in
    let* rows = list_size (int_bound 8) (map Tuple.of_list (list_repeat arity cell)) in
    return (arity, rows))

let mk ?(name = "t") arity rows =
  Relation.of_list ~name
    ~schema:(Schema.of_names ~ty:Value.TInt (List.init arity (fun i -> Printf.sprintf "c%d" i)))
    rows

let gen_pair =
  QCheck.Gen.(
    let* arity, rows1 = gen_rel in
    let* rows2 =
      list_size (int_bound 8)
        (map Tuple.of_list
           (list_repeat arity
              (frequency
                 [ (5, map (fun i -> Value.Int i) (int_bound 3)); (1, return Value.Null) ])))
    in
    return (arity, rows1, rows2))

let arb_pair = QCheck.make gen_pair

let set_of rel = Relation.tuple_set rel

let props =
  [
    QCheck.Test.make ~name:"distinct = set of rows" ~count:300
      (QCheck.make gen_rel) (fun (arity, rows) ->
        let r = mk arity rows in
        let d = Algebra.distinct r in
        TS.equal (set_of r) (set_of d)
        && Relation.cardinality d = TS.cardinal (set_of r));
    QCheck.Test.make ~name:"union mirrors set union" ~count:300 arb_pair
      (fun (arity, r1, r2) ->
        let a = mk arity r1 and b = mk arity r2 in
        TS.equal (set_of (Algebra.union a b)) (TS.union (set_of a) (set_of b)));
    QCheck.Test.make ~name:"inter mirrors set inter" ~count:300 arb_pair
      (fun (arity, r1, r2) ->
        let a = mk arity r1 and b = mk arity r2 in
        TS.equal (set_of (Algebra.inter a b)) (TS.inter (set_of a) (set_of b)));
    QCheck.Test.make ~name:"difference mirrors set diff" ~count:300 arb_pair
      (fun (arity, r1, r2) ->
        let a = mk arity r1 and b = mk arity r2 in
        TS.equal (set_of (Algebra.difference a b)) (TS.diff (set_of a) (set_of b)));
    QCheck.Test.make ~name:"product cardinality" ~count:300 arb_pair
      (fun (arity, r1, r2) ->
        (* Distinct relation names so the product can qualify the clashing
           column names. *)
        let a = mk arity r1 and b = mk ~name:"u" arity r2 in
        Relation.cardinality (Algebra.product a b)
        = Relation.cardinality a * Relation.cardinality b);
    QCheck.Test.make ~name:"sort preserves multiset" ~count:300
      (QCheck.make gen_rel) (fun (arity, rows) ->
        let r = mk arity rows in
        let sorted = Algebra.sort r in
        List.sort Tuple.compare (Relation.to_list r)
        = List.sort Tuple.compare (Relation.to_list sorted)
        &&
        (* ... and is actually sorted. *)
        let rec is_sorted = function
          | a :: (b :: _ as rest) -> Tuple.compare a b <= 0 && is_sorted rest
          | _ -> true
        in
        is_sorted (Relation.to_list sorted));
    QCheck.Test.make ~name:"select then select = select of conjunction" ~count:300
      (QCheck.make gen_rel) (fun (arity, rows) ->
        let r = mk arity rows in
        let p1 t = Tuple.hash t mod 2 = 0 in
        let p2 t = Tuple.hash t mod 3 <> 0 in
        Relation.equal_contents
          (Algebra.select (Algebra.select r p1) p2)
          (Algebra.select r (fun t -> p1 t && p2 t)));
  ]

let suite = List.map QCheck_alcotest.to_alcotest props
