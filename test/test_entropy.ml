(* Entropy, skyline and entropy² — the golden values of Figure 5 and the
   §4.4 walk-through.

   One deliberate deviation: the paper's Figure 5 lists u⁺ = 2 for
   (t2,t'1), but T(t2,t'1) = {(A1,B3)} has four strict supersets among the
   signatures of D0 ((t1,t'1), (t3,t'2), (t1,t'3), (t2,t'3)), all of which
   become certain-positive when (t2,t'1) is labeled positively, so by the
   paper's own Lemma 3.3 u⁺ = 4.  Every other cell of Figure 5 matches our
   implementation exactly, so we treat that cell as an erratum and assert
   the corrected value (see EXPERIMENTS.md). *)

open Fixtures
module Entropy = Jqi_core.Entropy
module State = Jqi_core.State
module Sample = Jqi_core.Sample
module Universe = Jqi_core.Universe

let e = Entropy.make

let figure5 =
  [
    ((1, 1), e 0 2);
    ((1, 2), e 0 1);
    ((1, 3), e 1 2);
    ((2, 1), e 1 4) (* paper prints (1,2); see erratum note above *);
    ((2, 2), e 1 1);
    ((2, 3), e 0 4);
    ((3, 1), e 0 11);
    ((3, 2), e 0 2);
    ((3, 3), e 0 1);
    ((4, 1), e 0 2);
    ((4, 2), e 1 1);
    ((4, 3), e 0 1);
  ]

let test_figure5 () =
  let st = State.create universe0 in
  List.iter
    (fun (ij, expected) ->
      Alcotest.check entropy_testable
        (Printf.sprintf "entropy(t%d,t'%d)" (fst ij) (snd ij))
        expected
        (Entropy.entropy1 st (class0 ij)))
    figure5

let test_dominates () =
  (* §4.4: (1,2) dominates (1,1) and (0,2), but not (2,2) nor (0,3). *)
  Alcotest.(check bool) "(1,2) dom (1,1)" true (Entropy.dominates (e 1 2) (e 1 1));
  Alcotest.(check bool) "(1,2) dom (0,2)" true (Entropy.dominates (e 1 2) (e 0 2));
  Alcotest.(check bool) "(1,2) !dom (2,2)" false (Entropy.dominates (e 1 2) (e 2 2));
  Alcotest.(check bool) "(1,2) !dom (0,3)" false (Entropy.dominates (e 1 2) (e 0 3))

let test_skyline () =
  let es = List.map snd figure5 in
  let sky = Entropy.skyline es in
  (* With the corrected (1,4) the skyline is {(1,4),(0,11)}; the paper's
     print (with (1,2)) gives {(1,2),(0,11)}. *)
  Alcotest.(check int) "skyline size" 2 (List.length sky);
  Alcotest.(check bool) "has (1,4)" true (List.exists (Entropy.equal (e 1 4)) sky);
  Alcotest.(check bool) "has (0,11)" true (List.exists (Entropy.equal (e 0 11)) sky)

let test_skyline_keeps_duplicates_representative () =
  let sky = Entropy.skyline [ e 1 2; e 1 2 ] in
  Alcotest.(check int) "duplicate entropies survive as one" 1 (List.length sky)

let test_best () =
  (* max of mins is 1; among skyline entries with lo = 1 the best is (1,4). *)
  match Entropy.best (List.map snd figure5) with
  | None -> Alcotest.fail "expected a best entropy"
  | Some b -> Alcotest.check entropy_testable "best" (e 1 4) b

(* §4.4 walk-through: S = {(t1,t'3)+, (t3,t'1)−};
   entropy²((t2,t'1)) = (3,3) because labeling it + ends the game (e⁺ =
   (∞,∞)) and labeling it − leaves E = {(3,3)}. *)
let walkthrough_state () =
  let st = State.create universe0 in
  State.label st (class0 (1, 3)) Sample.Positive;
  State.label st (class0 (3, 1)) Sample.Negative;
  st

let test_entropy2_walkthrough () =
  let st = walkthrough_state () in
  Alcotest.check entropy_testable "entropy2 (t2,t'1)" (e 3 3)
    (Entropy.entropy_k st 2 (class0 (2, 1)))

let test_entropy2_infinite_branch_detected () =
  let st = walkthrough_state () in
  (* Labeling (t2,t'1) positively leaves no informative tuple: every other
     informative class must see that as a possible end too.  (t4,t'1)
     labeled + gives tpos = {(A1,B2)}: some tuples stay informative, so its
     entropy² is finite. *)
  let e2 = Entropy.entropy_k st 2 (class0 (4, 1)) in
  Alcotest.(check bool) "finite" false (Entropy.is_infinite e2)

let test_entropy_k1_equals_entropy1 () =
  let st = walkthrough_state () in
  List.iter
    (fun i ->
      Alcotest.check entropy_testable
        (Printf.sprintf "k=1 class %d" i)
        (Entropy.entropy1 st i)
        (Entropy.entropy_k st 1 i))
    (State.informative_classes st)

let test_best_empty () =
  Alcotest.(check bool) "best of empty is None" true (Entropy.best [] = None)

let test_entropy3_sane () =
  (* Deeper lookahead never crashes and stays finite while informative
     tuples remain after any single label. *)
  let st = State.create universe0 in
  List.iter
    (fun i ->
      let e = Entropy.entropy_k st 3 i in
      Alcotest.(check bool) "finite at depth 3 on empty sample" true
        (not (Entropy.is_infinite e)))
    (State.informative_classes st)

let test_u_counts_nonnegative () =
  let st = walkthrough_state () in
  List.iter
    (fun i ->
      let e = Entropy.entropy1 st i in
      Alcotest.(check bool) "lo >= 0" true (e.Entropy.lo >= 0);
      Alcotest.(check bool) "hi bounded by informative tuples" true
        (e.Entropy.hi
        <= List.fold_left
             (fun acc c -> acc + Universe.count universe0 c)
             0
             (State.informative_classes st)))
    (State.informative_classes st)

let suite =
  [
    Alcotest.test_case "figure 5 entropies" `Quick test_figure5;
    Alcotest.test_case "dominance examples" `Quick test_dominates;
    Alcotest.test_case "figure 5 skyline" `Quick test_skyline;
    Alcotest.test_case "skyline dedups" `Quick test_skyline_keeps_duplicates_representative;
    Alcotest.test_case "best entropy" `Quick test_best;
    Alcotest.test_case "entropy2 walkthrough" `Quick test_entropy2_walkthrough;
    Alcotest.test_case "entropy2 finite branch" `Quick test_entropy2_infinite_branch_detected;
    Alcotest.test_case "entropy_k(1) = entropy1" `Quick test_entropy_k1_equals_entropy1;
    Alcotest.test_case "best of empty" `Quick test_best_empty;
    Alcotest.test_case "entropy depth 3" `Quick test_entropy3_sane;
    Alcotest.test_case "u counts sane" `Quick test_u_counts_nonnegative;
  ]
