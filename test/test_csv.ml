(* CSV: quoting, multi-line fields, type inference, relation round-trips. *)

module Value = Jqi_relational.Value
module Schema = Jqi_relational.Schema
module Tuple = Jqi_relational.Tuple
module Relation = Jqi_relational.Relation
module Csv = Jqi_relational.Csv

let records = Alcotest.(list (list string))

let test_parse_simple () =
  Alcotest.check records "basic"
    [ [ "a"; "b" ]; [ "1"; "2" ] ]
    (Csv.parse_string "a,b\n1,2\n")

let test_parse_no_trailing_newline () =
  Alcotest.check records "no trailing" [ [ "a" ]; [ "1" ] ] (Csv.parse_string "a\n1")

let test_parse_crlf () =
  Alcotest.check records "crlf" [ [ "a"; "b" ]; [ "1"; "2" ] ]
    (Csv.parse_string "a,b\r\n1,2\r\n")

let test_quoted_fields () =
  Alcotest.check records "comma in quotes" [ [ "a,b"; "c" ] ]
    (Csv.parse_string "\"a,b\",c\n");
  Alcotest.check records "escaped quote" [ [ "say \"hi\"" ] ]
    (Csv.parse_string "\"say \"\"hi\"\"\"\n");
  Alcotest.check records "newline in quotes" [ [ "two\nlines"; "x" ] ]
    (Csv.parse_string "\"two\nlines\",x\n")

let test_empty_fields () =
  Alcotest.check records "empties" [ [ ""; ""; "" ] ] (Csv.parse_string ",,\n")

let test_to_string_quotes () =
  let out = Csv.to_string [ [ "a,b"; "plain"; "q\"uote"; "nl\nin" ] ] in
  Alcotest.check records "roundtrip" [ [ "a,b"; "plain"; "q\"uote"; "nl\nin" ] ]
    (Csv.parse_string out)

let test_custom_separator () =
  Alcotest.check records "semicolon" [ [ "a"; "b" ] ]
    (Csv.parse_string ~sep:';' "a;b\n")

let test_relation_roundtrip () =
  let r =
    Relation.of_list ~name:"t"
      ~schema:
        (Schema.of_columns
           [ Schema.column "k" Value.TInt; Schema.column "s" Value.TString ])
      [
        Tuple.of_list [ Value.Int 1; Value.Str "x,y" ];
        Tuple.of_list [ Value.Null; Value.Str "plain" ];
      ]
  in
  let path = Filename.temp_file "jqi" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Csv.save_relation path r;
      let r' = Csv.load_relation ~name:"t" ~schema:(Relation.schema r) path in
      Alcotest.(check bool) "contents equal" true (Relation.equal_contents r r'))

(* CSV cannot distinguish NULL from the empty string: both serialize to an
   empty cell and load back as NULL.  This documents the (standard) lossy
   corner. *)
let test_empty_string_loads_as_null () =
  let r =
    Csv.relation_of_records ~name:"t"
      ~schema:(Schema.of_columns [ Schema.column "s" Value.TString ])
      [ [ "s" ]; [ "" ] ]
  in
  Alcotest.check Fixtures.value_testable "null" Value.Null
    (Tuple.get (Relation.row r 0) 0)

let test_type_inference_on_load () =
  let r =
    Csv.relation_of_records ~name:"t"
      [ [ "n"; "f"; "s" ]; [ "1"; "1.5"; "a" ]; [ "2"; "2"; "b" ] ]
  in
  let sch = Relation.schema r in
  Alcotest.(check bool) "int col" true (Schema.ty_at sch 0 = Value.TInt);
  Alcotest.(check bool) "float col" true (Schema.ty_at sch 1 = Value.TFloat);
  Alcotest.(check bool) "str col" true (Schema.ty_at sch 2 = Value.TString)

let test_ragged_rejected () =
  Alcotest.(check bool) "ragged raises" true
    (try
       ignore (Csv.relation_of_records ~name:"t" [ [ "a"; "b" ]; [ "1" ] ]);
       false
     with Invalid_argument _ -> true)

let test_empty_input_rejected () =
  Alcotest.(check bool) "no header raises" true
    (try
       ignore (Csv.relation_of_records ~name:"t" []);
       false
     with Invalid_argument _ -> true)

(* ---- property tests: import ∘ export = id ------------------------- *)

(* Field alphabet that exercises every quoting path: commas, double
   quotes, embedded newlines, spaces.  '\r' is excluded — the parser
   strips a trailing CR from every physical line (lenient CRLF handling),
   so fields containing "\r\n" are documented-lossy, like empty-vs-NULL
   above. *)
let gen_field =
  QCheck.Gen.(
    string_size ~gen:(oneofl [ 'a'; 'b'; 'z'; ','; '"'; '\n'; ' ' ]) (int_range 0 6))

(* Rectangular record tables, ≥2 columns so no line is a lone empty field
   (a single empty cell is indistinguishable from a blank line). *)
let gen_records =
  QCheck.Gen.(
    let* ncols = int_range 2 4 in
    let* nrows = int_range 1 6 in
    list_repeat nrows (list_repeat ncols gen_field))

let qcheck_records_roundtrip =
  QCheck.Test.make ~name:"parse_string (to_string recs) = recs" ~count:500
    (QCheck.make gen_records)
    (fun recs -> Csv.parse_string (Csv.to_string recs) = recs)

(* The same property under CRLF line endings: a writer that terminated
   records with \r\n must read back identically.  Fields are kept free of
   '\n' so the rewrite only touches record separators. *)
let gen_records_no_nl =
  QCheck.Gen.(
    let field =
      string_size ~gen:(oneofl [ 'a'; 'b'; ','; '"'; ' ' ]) (int_range 0 6)
    in
    let* ncols = int_range 2 4 in
    let* nrows = int_range 1 6 in
    list_repeat nrows (list_repeat ncols field))

let qcheck_records_roundtrip_crlf =
  QCheck.Test.make ~name:"CRLF import = LF import" ~count:500
    (QCheck.make gen_records_no_nl)
    (fun recs ->
      let lf = Csv.to_string recs in
      let buf = Buffer.create (String.length lf + 8) in
      String.iter
        (fun c -> if c = '\n' then Buffer.add_string buf "\r\n" else Buffer.add_char buf c)
        lf;
      Csv.parse_string (Buffer.contents buf) = recs)

(* Relation-level round-trip with a declared schema: every cell either
   NULL or a value that survives the text trip (non-empty strings — the
   empty string is the NULL encoding).  Exact row-list equality, not the
   set-based [Relation.equal_contents]. *)
let gen_relation =
  QCheck.Gen.(
    let int_cell =
      frequency
        [ (5, map (fun i -> Value.Int (i - 50)) (int_bound 100)); (1, return Value.Null) ]
    in
    let str_cell =
      frequency
        [
          ( 5,
            map
              (fun s -> Value.Str s)
              (string_size
                 ~gen:(oneofl [ 'a'; 'q'; ','; '"'; '\n'; ' ' ])
                 (int_range 1 6)) );
          (1, return Value.Null);
        ]
    in
    let* tys = list_size (int_range 1 4) (oneofl [ Value.TInt; Value.TString ]) in
    let cell ty = match ty with Value.TInt -> int_cell | _ -> str_cell in
    let row = map Tuple.of_list (flatten_l (List.map cell tys)) in
    let* rows = list_size (int_bound 8) row in
    return (tys, rows))

let qcheck_relation_roundtrip =
  QCheck.Test.make ~name:"relation: import (export r) = r (exact rows)"
    ~count:300 (QCheck.make gen_relation)
    (fun (tys, rows) ->
      let schema =
        Schema.of_columns
          (List.mapi (fun i ty -> Schema.column (Printf.sprintf "c%d" i) ty) tys)
      in
      let r = Relation.of_list ~name:"t" ~schema rows in
      let r' =
        Csv.relation_of_records ~name:"t" ~schema
          (Csv.parse_string (Csv.to_string (Csv.records_of_relation r)))
      in
      Relation.to_list r = Relation.to_list r')

let suite =
  [
    Alcotest.test_case "parse simple" `Quick test_parse_simple;
    Alcotest.test_case "no trailing newline" `Quick test_parse_no_trailing_newline;
    Alcotest.test_case "crlf" `Quick test_parse_crlf;
    Alcotest.test_case "quoted fields" `Quick test_quoted_fields;
    Alcotest.test_case "empty fields" `Quick test_empty_fields;
    Alcotest.test_case "writer quotes" `Quick test_to_string_quotes;
    Alcotest.test_case "custom separator" `Quick test_custom_separator;
    Alcotest.test_case "relation roundtrip" `Quick test_relation_roundtrip;
    Alcotest.test_case "empty string loads as null" `Quick test_empty_string_loads_as_null;
    Alcotest.test_case "type inference" `Quick test_type_inference_on_load;
    Alcotest.test_case "ragged rejected" `Quick test_ragged_rejected;
    Alcotest.test_case "empty input rejected" `Quick test_empty_input_rejected;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        qcheck_records_roundtrip;
        qcheck_records_roundtrip_crlf;
        qcheck_relation_roundtrip;
      ]
