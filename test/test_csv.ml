(* CSV: quoting, multi-line fields, type inference, relation round-trips. *)

module Value = Jqi_relational.Value
module Schema = Jqi_relational.Schema
module Tuple = Jqi_relational.Tuple
module Relation = Jqi_relational.Relation
module Csv = Jqi_relational.Csv

let records = Alcotest.(list (list string))

let test_parse_simple () =
  Alcotest.check records "basic"
    [ [ "a"; "b" ]; [ "1"; "2" ] ]
    (Csv.parse_string "a,b\n1,2\n")

let test_parse_no_trailing_newline () =
  Alcotest.check records "no trailing" [ [ "a" ]; [ "1" ] ] (Csv.parse_string "a\n1")

let test_parse_crlf () =
  Alcotest.check records "crlf" [ [ "a"; "b" ]; [ "1"; "2" ] ]
    (Csv.parse_string "a,b\r\n1,2\r\n")

let test_quoted_fields () =
  Alcotest.check records "comma in quotes" [ [ "a,b"; "c" ] ]
    (Csv.parse_string "\"a,b\",c\n");
  Alcotest.check records "escaped quote" [ [ "say \"hi\"" ] ]
    (Csv.parse_string "\"say \"\"hi\"\"\"\n");
  Alcotest.check records "newline in quotes" [ [ "two\nlines"; "x" ] ]
    (Csv.parse_string "\"two\nlines\",x\n")

let test_empty_fields () =
  Alcotest.check records "empties" [ [ ""; ""; "" ] ] (Csv.parse_string ",,\n")

let test_to_string_quotes () =
  let out = Csv.to_string [ [ "a,b"; "plain"; "q\"uote"; "nl\nin" ] ] in
  Alcotest.check records "roundtrip" [ [ "a,b"; "plain"; "q\"uote"; "nl\nin" ] ]
    (Csv.parse_string out)

let test_custom_separator () =
  Alcotest.check records "semicolon" [ [ "a"; "b" ] ]
    (Csv.parse_string ~sep:';' "a;b\n")

let test_relation_roundtrip () =
  let r =
    Relation.of_list ~name:"t"
      ~schema:
        (Schema.of_columns
           [ Schema.column "k" Value.TInt; Schema.column "s" Value.TString ])
      [
        Tuple.of_list [ Value.Int 1; Value.Str "x,y" ];
        Tuple.of_list [ Value.Null; Value.Str "plain" ];
      ]
  in
  let path = Filename.temp_file "jqi" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Csv.save_relation path r;
      let r' = Csv.load_relation ~name:"t" ~schema:(Relation.schema r) path in
      Alcotest.(check bool) "contents equal" true (Relation.equal_contents r r'))

(* CSV cannot distinguish NULL from the empty string: both serialize to an
   empty cell and load back as NULL.  This documents the (standard) lossy
   corner. *)
let test_empty_string_loads_as_null () =
  let r =
    Csv.relation_of_records ~name:"t"
      ~schema:(Schema.of_columns [ Schema.column "s" Value.TString ])
      [ [ "s" ]; [ "" ] ]
  in
  Alcotest.check Fixtures.value_testable "null" Value.Null
    (Tuple.get (Relation.row r 0) 0)

let test_type_inference_on_load () =
  let r =
    Csv.relation_of_records ~name:"t"
      [ [ "n"; "f"; "s" ]; [ "1"; "1.5"; "a" ]; [ "2"; "2"; "b" ] ]
  in
  let sch = Relation.schema r in
  Alcotest.(check bool) "int col" true (Schema.ty_at sch 0 = Value.TInt);
  Alcotest.(check bool) "float col" true (Schema.ty_at sch 1 = Value.TFloat);
  Alcotest.(check bool) "str col" true (Schema.ty_at sch 2 = Value.TString)

let test_ragged_rejected () =
  Alcotest.(check bool) "ragged raises" true
    (try
       ignore (Csv.relation_of_records ~name:"t" [ [ "a"; "b" ]; [ "1" ] ]);
       false
     with Invalid_argument _ -> true)

let test_empty_input_rejected () =
  Alcotest.(check bool) "no header raises" true
    (try
       ignore (Csv.relation_of_records ~name:"t" []);
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "parse simple" `Quick test_parse_simple;
    Alcotest.test_case "no trailing newline" `Quick test_parse_no_trailing_newline;
    Alcotest.test_case "crlf" `Quick test_parse_crlf;
    Alcotest.test_case "quoted fields" `Quick test_quoted_fields;
    Alcotest.test_case "empty fields" `Quick test_empty_fields;
    Alcotest.test_case "writer quotes" `Quick test_to_string_quotes;
    Alcotest.test_case "custom separator" `Quick test_custom_separator;
    Alcotest.test_case "relation roundtrip" `Quick test_relation_roundtrip;
    Alcotest.test_case "empty string loads as null" `Quick test_empty_string_loads_as_null;
    Alcotest.test_case "type inference" `Quick test_type_inference_on_load;
    Alcotest.test_case "ragged rejected" `Quick test_ragged_rejected;
    Alcotest.test_case "empty input rejected" `Quick test_empty_input_rejected;
  ]
