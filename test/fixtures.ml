(* Shared test fixtures: the paper's running examples. *)

module Value = Jqi_relational.Value
module Schema = Jqi_relational.Schema
module Tuple = Jqi_relational.Tuple
module Relation = Jqi_relational.Relation
module Omega = Jqi_core.Omega
module Universe = Jqi_core.Universe

let int_schema names = Schema.of_names ~ty:Value.TInt names
let str_schema names = Schema.of_names ~ty:Value.TString names

(* Example 2.1: R0(A1,A2) and P0(B1,B2,B3). *)
let r0 =
  Relation.of_list ~name:"R0" ~schema:(int_schema [ "A1"; "A2" ])
    [ Tuple.ints [ 0; 1 ]; Tuple.ints [ 0; 2 ]; Tuple.ints [ 2; 2 ]; Tuple.ints [ 1; 0 ] ]

let p0 =
  Relation.of_list ~name:"P0" ~schema:(int_schema [ "B1"; "B2"; "B3" ])
    [ Tuple.ints [ 1; 1; 0 ]; Tuple.ints [ 0; 1; 2 ]; Tuple.ints [ 2; 0; 0 ] ]

let omega0 = Omega.of_schemas (Relation.schema r0) (Relation.schema p0)
let universe0 = Universe.build r0 p0

(* Attribute-pair shorthand: indexes are 0-based, the paper's A1 is index 0. *)
let pred0 pairs = Omega.of_pairs omega0 pairs

(* Row-index pairs for the tuples of D0 as named in the paper:
   (t_i, t'_j) is (i-1, j-1). *)
let d0 (i, j) = (i - 1, j - 1)

(* The class of the universe holding tuple (t_i, t'_j). *)
let class0 (i, j) =
  let tr = Relation.row r0 (i - 1) and tp = Relation.row p0 (j - 1) in
  let s = Jqi_core.Tsig.of_tuples omega0 tr tp in
  match Universe.find_class universe0 s with
  | Some c -> c
  | None -> failwith "Fixtures.class0: signature not in universe"

(* Figure 3's expected T column, in the paper's order. *)
let figure3 =
  [
    ((1, 1), [ (0, 2); (1, 0); (1, 1) ]);
    ((1, 2), [ (0, 0); (1, 1) ]);
    ((1, 3), [ (0, 1); (0, 2) ]);
    ((2, 1), [ (0, 2) ]);
    ((2, 2), [ (0, 0); (1, 2) ]);
    ((2, 3), [ (0, 1); (0, 2); (1, 0) ]);
    ((3, 1), []);
    ((3, 2), [ (0, 2); (1, 2) ]);
    ((3, 3), [ (0, 0); (1, 0) ]);
    ((4, 1), [ (0, 0); (0, 1); (1, 2) ]);
    ((4, 2), [ (0, 1); (1, 0) ]);
    ((4, 3), [ (1, 1); (1, 2) ]);
  ]

(* The introduction's Flight and Hotel instances (Figure 1). *)
let flight =
  Relation.of_list ~name:"Flight" ~schema:(str_schema [ "From"; "To"; "Airline" ])
    [
      Tuple.strs [ "Paris"; "Lille"; "AF" ];
      Tuple.strs [ "Lille"; "NYC"; "AA" ];
      Tuple.strs [ "NYC"; "Paris"; "AA" ];
      Tuple.strs [ "Paris"; "NYC"; "AF" ];
    ]

let hotel =
  Relation.of_list ~name:"Hotel" ~schema:(str_schema [ "City"; "Discount" ])
    [
      Tuple.strs [ "NYC"; "AA" ];
      Tuple.strs [ "Paris"; "None" ];
      Tuple.strs [ "Lille"; "AF" ];
    ]

(* Alcotest testables. *)
let bits_testable =
  Alcotest.testable Jqi_util.Bits.pp Jqi_util.Bits.equal

let entropy_testable =
  Alcotest.testable Jqi_core.Entropy.pp Jqi_core.Entropy.equal

let label_testable =
  Alcotest.testable Jqi_core.Sample.pp_label ( = )

let tuple_testable = Alcotest.testable Tuple.pp Tuple.equal

let value_testable =
  Alcotest.testable Value.pp (fun a b -> Value.compare a b = 0)
